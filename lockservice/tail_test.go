package lockservice

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hwtwbg"
	"hwtwbg/journal"
)

// startTailServer runs a server with one shard and a deliberately tiny
// journal ring, so wraparound (and therefore tail lag) is cheap to
// provoke deterministically.
func startTailServer(t *testing.T, perRing int) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{Shards: 1, JournalSize: perRing})
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// runTxns drives n single-lock transactions through the wire, each
// journaling begin+request+grant+commit records.
func runTxns(t *testing.T, c *Client, n int, res string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := c.Lock(res, hwtwbg.X); err != nil {
			t.Fatal(err)
		}
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTailBoundedDeliversAndReturnsToCommandMode(t *testing.T) {
	_, addr := startTailServer(t, 1024)
	work := dial(t, addr)
	runTxns(t, work, 3, "tail-r")

	c := dial(t, addr)
	var recs []journal.Record
	cur, err := c.TailJournal(TailOptions{
		FromOldest: true,
		Max:        8,
		OnBatch: func(b TailBatch) error {
			if b.Lost != 0 {
				t.Errorf("unexpected lag: batch %+v", b)
			}
			recs = append(recs, b.Records...)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("TailJournal: %v", err)
	}
	if len(recs) != 8 {
		t.Fatalf("tailed %d records, want 8", len(recs))
	}
	if len(cur) == 0 {
		t.Fatal("TailJournal returned no cursor")
	}
	var kinds []string
	for i := range recs {
		kinds = append(kinds, recs[i].Kind.String())
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "grant") || !strings.Contains(joined, "begin") {
		t.Fatalf("tail saw kinds %q, want grants and begins", joined)
	}
	// A bounded tail ends with END and the session returns to the
	// request/reply protocol on the same connection.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after bounded tail: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TailSessions < 1 {
		t.Fatalf("tail_sessions = %d, want >= 1", st.TailSessions)
	}
}

// TestTailResumeFromCursorAfterDrop is the resumable-cursor contract
// end to end: a tail session ends mid-stream (the consumer stops and
// its connection dies), the journal wraps past the dropped session's
// position, and a brand-new connection resuming from the returned
// cursor gets the overwritten span accounted in BATCH lost — with the
// deliveries themselves gap-free from the resume point.
func TestTailResumeFromCursorAfterDrop(t *testing.T) {
	_, addr := startTailServer(t, 16)
	work := dial(t, addr)
	runTxns(t, work, 2, "r")

	// Session 1: consume one batch, then drop (ErrStopTail ends the
	// session client-side; the connection is then abandoned).
	c1 := dial(t, addr)
	var got1 int
	cur, err := c1.TailJournal(TailOptions{
		FromOldest: true,
		OnBatch: func(b TailBatch) error {
			got1 += len(b.Records)
			return ErrStopTail
		},
	})
	if err != nil {
		t.Fatalf("session 1: %v", err)
	}
	if got1 == 0 || len(cur) == 0 {
		t.Fatalf("session 1 consumed %d records, cursor %v", got1, cur)
	}
	c1.Close()

	// The consumer is away; 32 more transactions wrap every 16-slot ring
	// far past the dropped cursor.
	runTxns(t, work, 32, "r")

	// Session 2, new connection: resume from the dropped session's
	// cursor. The overwritten span must surface as lost, explicitly.
	c2 := dial(t, addr)
	var lost uint64
	var got2 int
	cur2, err := c2.TailJournal(TailOptions{
		Cursor: cur,
		Max:    16,
		OnBatch: func(b TailBatch) error {
			lost += b.Lost
			got2 += len(b.Records)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("session 2: %v", err)
	}
	if lost == 0 {
		t.Fatal("resume past wraparound reported zero lag; overwritten records vanished silently")
	}
	if got2 != 16 {
		t.Fatalf("session 2 delivered %d records, want 16", got2)
	}
	for i, c := range cur2 {
		if c < cur[i] {
			t.Fatalf("cursor ran backwards: ring %d %d -> %d", i, cur[i], cur2[i])
		}
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TailSessions < 2 {
		t.Fatalf("tail_sessions = %d, want >= 2", st.TailSessions)
	}
	if st.TailLagged == 0 {
		t.Fatal("tail_lagged = 0, want > 0 after a lagged resume")
	}
}

func TestTailFromNowSeesOnlyNewRecords(t *testing.T) {
	_, addr := startTailServer(t, 1024)
	work := dial(t, addr)
	runTxns(t, work, 4, "old")

	c := dial(t, addr)
	done := make(chan error, 1)
	var mu sync.Mutex
	var recs []journal.Record
	go func() {
		_, err := c.TailJournal(TailOptions{
			FromOldest: false,
			Max:        4,
			Heartbeat:  10 * time.Millisecond,
			OnBatch: func(b TailBatch) error {
				mu.Lock()
				recs = append(recs, b.Records...)
				mu.Unlock()
				return nil
			},
		})
		done <- err
	}()
	// Give the tail time to register its "now" position, then generate
	// the records it should see.
	time.Sleep(50 * time.Millisecond)
	runTxns(t, work, 4, "new")
	if err := <-done; err != nil {
		t.Fatalf("TailJournal: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range recs {
		if res := recs[i].Resource(); res == "old" {
			t.Fatalf("from=now delivered a pre-subscription record: %s", recs[i].String())
		}
	}
	if len(recs) != 4 {
		t.Fatalf("tailed %d records, want 4", len(recs))
	}
}

func TestTailHeartbeatCarriesCounters(t *testing.T) {
	_, addr := startTailServer(t, 1024)
	work := dial(t, addr)
	runTxns(t, work, 2, "hb-r")

	c := dial(t, addr)
	var hbs []TailHeartbeat
	_, err := c.TailJournal(TailOptions{
		FromOldest: true,
		Heartbeat:  5 * time.Millisecond,
		OnHeartbeat: func(hb TailHeartbeat) error {
			hbs = append(hbs, hb)
			if len(hbs) >= 2 {
				return ErrStopTail
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("TailJournal: %v", err)
	}
	if len(hbs) < 2 {
		t.Fatalf("got %d heartbeats, want 2", len(hbs))
	}
	if hbs[0].Seq != 1 || hbs[1].Seq != 2 {
		t.Fatalf("heartbeat seqs %d,%d, want 1,2", hbs[0].Seq, hbs[1].Seq)
	}
	if hbs[0].Emitted == 0 || hbs[0].Grants == 0 {
		t.Fatalf("heartbeat counters empty: %+v", hbs[0])
	}
}

func TestTailJournalDisabled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{JournalSize: -1})
	t.Cleanup(func() { srv.Close() })
	c := dial(t, ln.Addr().String())
	if _, err := c.TailJournal(TailOptions{Max: 1}); err == nil || !strings.Contains(err.Error(), "journal disabled") {
		t.Fatalf("TailJournal error = %v, want journal disabled", err)
	}
	// The refused TAIL leaves the session usable.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestTailBadArguments(t *testing.T) {
	_, addr := startTailServer(t, 64)
	c := dial(t, addr)
	// A cursor whose ring count does not match the server's is refused,
	// not silently misaligned.
	if _, err := c.TailJournal(TailOptions{Cursor: TailCursor{1, 2, 3, 4, 5, 6, 7}, Max: 1}); err == nil ||
		!strings.Contains(err.Error(), "cursor") {
		t.Fatalf("mismatched cursor error = %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestOpTagJournaledOverWire(t *testing.T) {
	_, addr := startTailServer(t, 1024)
	c := dial(t, addr)
	c.SetOpTag(424242)
	id, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Lock("tagged", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.SetOpTag(0)
	recs, err := c.DumpJournal()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range recs {
		if recs[i].Kind == journal.KindOpTag && recs[i].Txn == int64(id) {
			if recs[i].Arg != 424242 {
				t.Fatalf("op-tag record Arg = %d, want 424242", recs[i].Arg)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no op-tag record for T%d in %d records", id, len(recs))
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.OpTags == 0 {
		t.Fatal("op_tags stat = 0, want > 0")
	}
	// Setting the same tag twice emits one journal record per change,
	// but the STATS counter counts wire attachments.
	if st.OpTags < 1 {
		t.Fatalf("op_tags = %d", st.OpTags)
	}
}

func TestClientMetrics(t *testing.T) {
	_, addr := startTailServer(t, 1024)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	runTxns(t, c, 2, "m")
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}

	// A TRYLOCK refusal lands in the busy counter, not errors.
	holder := dial(t, addr)
	if _, err := holder.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := holder.Lock("contended", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.TryLock("contended", hwtwbg.X); !errors.Is(err, ErrBusy) {
		t.Fatalf("TryLock = %v, want ErrBusy", err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}

	snap := c.Metrics()
	byVerb := map[string]VerbMetrics{}
	for _, v := range snap.Verbs {
		byVerb[v.Verb] = v
	}
	if m := byVerb["BEGIN"]; m.Calls != 3 || m.Errors != 0 {
		t.Fatalf("BEGIN metrics = %+v, want 3 clean calls", m)
	}
	if m := byVerb["LOCK"]; m.Calls != 2 || m.Latency.Count != 2 {
		t.Fatalf("LOCK metrics = %+v, want 2 calls with 2 latency samples", m)
	}
	if m := byVerb["TRYLOCK"]; m.Calls != 1 || m.Busy != 1 || m.Errors != 0 {
		t.Fatalf("TRYLOCK metrics = %+v, want 1 call, 1 busy, 0 errors", m)
	}
	if m := byVerb["PING"]; m.Calls != 1 {
		t.Fatalf("PING metrics = %+v", m)
	}
	if _, ok := byVerb["DUMP"]; ok {
		t.Fatal("DUMP metrics present without any DUMP call")
	}
}
