package lockservice

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"hwtwbg"
	"hwtwbg/journal"
)

// /journal/stream: the flight recorder as server-sent events — the same
// cursor-based ring tail as the wire TAIL verb, but over HTTP so a
// browser EventSource or curl can watch live without speaking the lock
// protocol. Records render as journal.RecordView JSON.

// sseBatch is the "batch" event payload: one ring's run of records plus
// the tail contract's explicit loss accounting.
type sseBatch struct {
	Ring    int                  `json:"ring"`
	Next    uint64               `json:"next"`
	Lost    uint64               `json:"lost,omitempty"`
	Records []journal.RecordView `json:"records"`
}

// sseHeartbeat is the "heartbeat" event payload: the counter deltas a
// dashboard needs between batches (the SSE shape of the TAIL HB frame).
type sseHeartbeat struct {
	Seq             uint64 `json:"seq"`
	Emitted         uint64 `json:"emitted"`
	Overwritten     uint64 `json:"overwritten"`
	TornReads       uint64 `json:"torn_reads"`
	Grants          uint64 `json:"grants"`
	Runs            int    `json:"runs"`
	Cycles          int    `json:"cycles"`
	Aborted         int    `json:"aborted"`
	Lagged          uint64 `json:"lagged"`
	PeriodNs        int64  `json:"period_ns"`
	CostModelPeriod int64  `json:"cm_period_ns"`
}

// writeSSE emits one server-sent event with a JSON data line.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte("event: " + event + "\ndata: ")); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n\n"))
	return err
}

// serveJournalStream handles GET /journal/stream. Query parameters:
// from=oldest|now (default oldest), max=<n> (end after n records;
// absent or 0 streams until the client disconnects), hb=<duration>
// (heartbeat cadence, default 1s). 404 when the journal is disabled.
func serveJournalStream(lm *hwtwbg.Manager, w http.ResponseWriter, r *http.Request) {
	jr := lm.Journal()
	if jr == nil {
		http.NotFound(w, r)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	q := r.URL.Query()
	fromOldest := true
	switch q.Get("from") {
	case "", "oldest":
	case "now":
		fromOldest = false
	default:
		http.Error(w, "bad from= (want oldest or now)", http.StatusBadRequest)
		return
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad max= count", http.StatusBadRequest)
			return
		}
		max = n
	}
	hb := defaultTailHeartbeat
	if v := q.Get("hb"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "bad hb= duration", http.StatusBadRequest)
			return
		}
		hb = d
	}

	nr := jr.NumRings()
	cursors := make([]uint64, nr)
	for i := 0; i < nr; i++ {
		if fromOldest {
			cursors[i] = jr.Ring(i).Oldest()
		} else {
			cursors[i] = jr.Ring(i).Head()
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	var (
		total  int
		lagged uint64
		hbSeq  uint64
		buf    []journal.Record
		lastHB = time.Now()
	)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		progressed := false
		for i := 0; i < nr && !(max > 0 && total >= max); i++ {
			limit := tailBatchCap
			if max > 0 && max-total < limit {
				limit = max - total
			}
			recs, next, lost := jr.Ring(i).ReadFrom(cursors[i], limit, buf[:0])
			if len(recs) == 0 && lost == 0 {
				continue
			}
			cursors[i] = next
			lagged += lost
			b := sseBatch{Ring: i, Next: next, Lost: lost, Records: make([]journal.RecordView, len(recs))}
			for j := range recs {
				b.Records[j] = recs[j].View()
			}
			if writeSSE(w, "batch", b) != nil {
				return
			}
			total += len(recs)
			progressed = true
			buf = recs[:0]
		}
		if max > 0 && total >= max {
			writeSSE(w, "end", map[string]int{"records": total})
			fl.Flush()
			return
		}
		if time.Since(lastHB) >= hb {
			hbSeq++
			st := lm.Stats()
			var grants uint64
			for _, sh := range lm.ShardStats() {
				grants += sh.Grants
			}
			js := jr.Stats()
			cm := lm.CostModel()
			ev := sseHeartbeat{
				Seq: hbSeq, Emitted: js.Emitted, Overwritten: js.Overwritten,
				TornReads: js.TornReads, Grants: grants,
				Runs: st.Runs, Cycles: st.CyclesSearched, Aborted: st.Aborted,
				Lagged: lagged, PeriodNs: lm.CurrentPeriod().Nanoseconds(),
				CostModelPeriod: cm.Period.Nanoseconds(),
			}
			if writeSSE(w, "heartbeat", ev) != nil {
				return
			}
			progressed = true
			lastHB = time.Now()
		}
		if progressed {
			fl.Flush()
			continue
		}
		time.Sleep(tailPollInterval)
	}
}
