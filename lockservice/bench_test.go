package lockservice

import (
	"net"
	"testing"
	"time"

	"hwtwbg"
)

func BenchmarkRoundTrip(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{Period: 50 * time.Millisecond})
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockCommitCycle(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{Period: 50 * time.Millisecond})
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Begin(); err != nil {
			b.Fatal(err)
		}
		if err := c.Lock("bench", hwtwbg.X); err != nil {
			b.Fatal(err)
		}
		if err := c.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
