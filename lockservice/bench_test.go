package lockservice

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hwtwbg"
)

func BenchmarkRoundTrip(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{Period: 50 * time.Millisecond})
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockCommitParallel runs the begin/lock/commit round trip
// from many concurrent connections over a wide key space, so server-
// side lock work spreads across shards.
func BenchmarkLockCommitParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := Serve(ln, hwtwbg.Options{Period: 50 * time.Millisecond, Shards: shards})
			defer srv.Close()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c, err := Dial(ln.Addr().String())
				if err != nil {
					b.Error(err)
					return
				}
				defer c.Close()
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					if _, err := c.Begin(); err != nil {
						b.Error(err)
						return
					}
					if err := c.Lock(fmt.Sprintf("k%05d", rng.Intn(16*1024)), hwtwbg.X); err != nil {
						b.Error(err)
						return
					}
					if err := c.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkLockCommitCycle(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{Period: 50 * time.Millisecond})
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Begin(); err != nil {
			b.Fatal(err)
		}
		if err := c.Lock("bench", hwtwbg.X); err != nil {
			b.Fatal(err)
		}
		if err := c.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
