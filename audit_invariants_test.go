//go:build invariants

package hwtwbg

// Tests that only exist in `go test -tags=invariants` runs: they arm
// Options.Audit and require the runtime invariant auditor to check
// every detector activation — TDR-1 aborts, TDR-2 repositionings and
// idle passes, under both activation strategies — and to find nothing.
// The differential and false-cycle tests in differential_test.go also
// arm the auditor, so a tagged run re-verifies the paper's properties
// across the whole randomized workload suite via assertAuditClean.

import (
	"context"
	"testing"
)

// auditedDeadlock builds the two-transaction cross-shard deadlock on m
// and returns the channel carrying the two blocked Locks' errors.
func auditedDeadlock(t *testing.T, m *Manager) chan error {
	t.Helper()
	rs := distinctShardResources(t, m, 2)
	ctx := context.Background()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, rs[0], X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, rs[1], X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, rs[1], X) }()
	waitBlocked(t, m, a.ID())
	go func() { errs <- b.Lock(ctx, rs[0], X) }()
	waitBlocked(t, m, b.ID())
	return errs
}

// TestAuditorChecksEveryActivation runs a TDR-1 activation and an idle
// activation under each detector strategy and requires one clean,
// correctly-labelled report per activation.
func TestAuditorChecksEveryActivation(t *testing.T) {
	for _, det := range []string{DetectorSTW, DetectorSnapshot} {
		t.Run(det, func(t *testing.T) {
			m := Open(Options{Shards: 4, Detector: det, Audit: true})
			defer m.Close()
			errs := auditedDeadlock(t, m)
			if st := m.Detect(); st.Aborted != 1 {
				t.Fatalf("activation = %+v, want one abort", st)
			}
			<-errs
			<-errs
			if st := m.Detect(); st.CyclesSearched != 0 {
				t.Fatalf("second activation = %+v, want idle", st)
			}
			if n := m.AuditRuns(); n != 2 {
				t.Fatalf("AuditRuns = %d, want 2 (one per activation)", n)
			}
			reps := m.AuditReports()
			if len(reps) != 2 {
				t.Fatalf("got %d audit reports, want 2", len(reps))
			}
			for i, rep := range reps {
				if rep.Detector != det {
					t.Errorf("report %d labelled %q, want %q", i, rep.Detector, det)
				}
				if rep.Seq != i+1 {
					t.Errorf("report %d has Seq %d, want %d", i, rep.Seq, i+1)
				}
				if !rep.Ok() {
					t.Errorf("%s", rep)
				}
			}
		})
	}
}

// TestAuditorTDR2Activation replays the TestManualDetectAndTDR2 tableau
// — a deadlock resolved by queue repositioning, nobody aborted — with
// the auditor armed: the repositioning must survive the genuine-cycle
// and post-resolution acyclicity checks.
func TestAuditorTDR2Activation(t *testing.T) {
	for _, det := range []string{DetectorSTW, DetectorSnapshot} {
		t.Run(det, func(t *testing.T) {
			m := Open(Options{Detector: det, Audit: true})
			defer m.Close()
			ctx := context.Background()
			t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
			if err := t1.Lock(ctx, "q", IS); err != nil {
				t.Fatal(err)
			}
			if err := t3.Lock(ctx, "h", X); err != nil {
				t.Fatal(err)
			}
			lockErr := make(chan error, 3)
			go func() { lockErr <- t2.Lock(ctx, "q", X) }()
			waitBlocked(t, m, t2.ID())
			go func() { lockErr <- t3.Lock(ctx, "q", S) }()
			waitBlocked(t, m, t3.ID())
			go func() { lockErr <- t1.Lock(ctx, "h", S) }()
			waitBlocked(t, m, t1.ID())
			if st := m.Detect(); st.Repositioned != 1 || st.Aborted != 0 {
				t.Fatalf("activation = %+v, want one repositioning and no aborts", st)
			}
			if n := m.AuditRuns(); n != 1 {
				t.Fatalf("AuditRuns = %d, want 1", n)
			}
			assertAuditClean(t, m)
		})
	}
}

// TestAuditorRequiresOption checks the auditor stays dormant — even in
// an invariants build — unless Options.Audit is set.
func TestAuditorRequiresOption(t *testing.T) {
	m := Open(Options{Shards: 4})
	defer m.Close()
	errs := auditedDeadlock(t, m)
	if st := m.Detect(); st.Aborted != 1 {
		t.Fatalf("activation = %+v, want one abort", st)
	}
	<-errs
	<-errs
	if n := m.AuditRuns(); n != 0 {
		t.Fatalf("AuditRuns = %d without Options.Audit, want 0", n)
	}
	if reps := m.AuditReports(); len(reps) != 0 {
		t.Fatalf("AuditReports = %v without Options.Audit, want none", reps)
	}
}
