package kv

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hwtwbg"
)

func open(t *testing.T) *Store {
	t.Helper()
	s := Open(Options{DetectEvery: time.Millisecond})
	t.Cleanup(s.Close)
	return s
}

func TestBasicCRUD(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	tx := s.Begin()
	if _, ok, err := tx.Get(ctx, "a"); err != nil || ok {
		t.Fatalf("get missing: %v %v", ok, err)
	}
	if err := tx.Put(ctx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes before commit.
	if v, ok, err := tx.Get(ctx, "a"); err != nil || !ok || v != "1" {
		t.Fatalf("read-your-writes: %q %v %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	if v, ok, _ := tx2.Get(ctx, "a"); !ok || v != "1" {
		t.Fatalf("committed value: %q %v", v, ok)
	}
	if err := tx2.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx2.Get(ctx, "a"); ok {
		t.Fatal("read-your-deletes failed")
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	tx := s.Begin()
	if err := tx.Put(ctx, "k", "dirty"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Err(); !errors.Is(err, hwtwbg.ErrAborted) {
		t.Fatalf("Err = %v", err)
	}
	tx2 := s.Begin()
	defer tx2.Abort()
	if _, ok, _ := tx2.Get(ctx, "k"); ok {
		t.Fatal("aborted write became visible")
	}
}

func TestNoDirtyReads(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	w := s.Begin()
	if err := w.Put(ctx, "k", "v1"); err != nil {
		t.Fatal(err)
	}
	// A reader must block until the writer finishes (X lock on k).
	got := make(chan string, 1)
	go func() {
		r := s.Begin()
		defer r.Abort()
		v, _, err := r.Get(ctx, "k")
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("reader returned %q while writer uncommitted", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != "v1" {
		t.Fatalf("reader saw %q", v)
	}
}

func TestScanSortedAndMerged(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error {
		for _, k := range []string{"b", "a", "c"} {
			if err := tx.Put(ctx, k, "v"+k); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	defer tx.Abort()
	if err := tx.Put(ctx, "d", "vd"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{"b", "vb"}, {"c", "vc"}, {"d", "vd"}}
	if len(kvs) != len(want) {
		t.Fatalf("scan = %v", kvs)
	}
	for i := range want {
		if kvs[i] != want[i] {
			t.Fatalf("scan = %v, want %v", kvs, want)
		}
	}
}

func TestScanBlocksPhantoms(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	scanner := s.Begin()
	if _, err := scanner.Scan(ctx); err != nil {
		t.Fatal(err)
	}
	inserted := make(chan error, 1)
	go func() {
		w := s.Begin()
		if err := w.Put(ctx, "new", "x"); err != nil {
			inserted <- err
			return
		}
		inserted <- w.Commit()
	}()
	select {
	case err := <-inserted:
		t.Fatalf("insert completed (%v) during a scan: phantom!", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Scanning again sees the same (empty) state.
	kvs, err := scanner.Scan(ctx)
	if err != nil || len(kvs) != 0 {
		t.Fatalf("rescan = %v, %v", kvs, err)
	}
	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-inserted; err != nil {
		t.Fatalf("insert after scan: %v", err)
	}
}

// TestConcurrentCounters is the serializability acid test: many
// goroutines increment shared counters with read-then-write
// transactions (upgrade deadlocks guaranteed); the final sums must be
// exact.
func TestConcurrentCounters(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	const workers = 8
	const increments = 40
	const counters = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < increments; i++ {
				key := "ctr" + strconv.Itoa(rng.Intn(counters))
				if err := s.Update(ctx, func(tx *Tx) error {
					v, _, err := tx.Get(ctx, key)
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(v)
					return tx.Put(ctx, key, strconv.Itoa(n+1))
				}); err != nil {
					errs <- fmt.Errorf("worker %d: %w", seed, err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	if err := s.View(ctx, func(tx *Tx) error {
		kvs, err := tx.Scan(ctx)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			n, _ := strconv.Atoi(kv.Value)
			total += n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != workers*increments {
		t.Fatalf("total = %d, want %d (lost updates!)", total, workers*increments)
	}
	st := s.Stats()
	t.Logf("stats: %+v", st)
}

func TestUpdatePropagatesUserErrors(t *testing.T) {
	s := open(t)
	sentinel := errors.New("boom")
	err := s.Update(context.Background(), func(tx *Tx) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateRespectsContext(t *testing.T) {
	s := open(t)
	ctx, cancel := context.WithCancel(context.Background())
	blockHeld := make(chan struct{})
	release := make(chan struct{})
	go func() {
		tx := s.Begin()
		if err := tx.Put(context.Background(), "k", "x"); err != nil {
			t.Error(err)
		}
		close(blockHeld)
		<-release
		tx.Abort()
	}()
	<-blockHeld
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := s.Update(ctx, func(tx *Tx) error {
		_, _, err := tx.Get(ctx, "k") // blocks on the X lock
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	close(release)
}

func TestRetryBudget(t *testing.T) {
	s := Open(Options{DetectEvery: time.Millisecond, MaxRetries: 2})
	defer s.Close()
	attempts := 0
	err := s.Update(context.Background(), func(tx *Tx) error {
		attempts++
		return hwtwbg.ErrAborted // simulate perpetual victimization
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d", attempts)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	// Two transactions read the same key then both write it; strict 2PL
	// with upgrades forces one to deadlock and retry, so both updates
	// survive.
	s := open(t)
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error { return tx.Put(ctx, "n", "0") }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Update(ctx, func(tx *Tx) error {
				v, _, err := tx.Get(ctx, "n")
				if err != nil {
					return err
				}
				n, _ := strconv.Atoi(v)
				time.Sleep(2 * time.Millisecond) // widen the window
				return tx.Put(ctx, "n", strconv.Itoa(n+1))
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	tx := s.Begin()
	defer tx.Abort()
	v, _, err := tx.Get(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	if v != "2" {
		t.Fatalf("n = %q, want 2 (lost update)", v)
	}
}

func TestMetricsSnapshotAndManager(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error {
		return tx.Put(ctx, "k", "v")
	}); err != nil {
		t.Fatal(err)
	}
	if s.Manager() == nil {
		t.Fatal("Manager() = nil")
	}
	snap := s.MetricsSnapshot()
	// The Update took IX on the root and X on the key: at least two
	// fresh requests, both granted immediately.
	if snap.Total.Fresh < 2 || snap.Total.Grants < 2 || snap.Total.Immediate < 2 {
		t.Fatalf("metrics = %+v", snap.Total)
	}
	if got := snap.Total.GrantsByMode["IX"]; got < 1 {
		t.Fatalf("IX grants = %d, want >= 1", got)
	}
	if snap.Total.GrantNs.Count != snap.Total.Grants {
		t.Fatalf("grant histogram count %d != grants %d", snap.Total.GrantNs.Count, snap.Total.Grants)
	}
}

// recordingKVTracer counts hook invocations (kv-level wiring check).
type recordingKVTracer struct {
	requests, grants, aborts atomic.Uint64
}

func (r *recordingKVTracer) OnRequest(hwtwbg.TxnID, hwtwbg.ResourceID, hwtwbg.Mode) {
	r.requests.Add(1)
}
func (r *recordingKVTracer) OnBlock(hwtwbg.TxnID, hwtwbg.ResourceID, hwtwbg.Mode, int) {}
func (r *recordingKVTracer) OnGrant(hwtwbg.TxnID, hwtwbg.ResourceID, hwtwbg.Mode, time.Duration) {
	r.grants.Add(1)
}
func (r *recordingKVTracer) OnAbort(hwtwbg.TxnID)                 { r.aborts.Add(1) }
func (r *recordingKVTracer) OnActivation(hwtwbg.ActivationReport) {}

func TestTracerOptionWired(t *testing.T) {
	tr := &recordingKVTracer{}
	s := Open(Options{DetectEvery: time.Millisecond, Tracer: tr})
	defer s.Close()
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error {
		return tx.Put(ctx, "k", "v")
	}); err != nil {
		t.Fatal(err)
	}
	if tr.requests.Load() < 2 || tr.grants.Load() < 2 {
		t.Fatalf("tracer saw requests=%d grants=%d", tr.requests.Load(), tr.grants.Load())
	}
}

func TestGetAllPutAll(t *testing.T) {
	s := open(t)
	ctx := context.Background()

	tx := s.Begin()
	if err := tx.PutAll(ctx, map[string]string{"a": "1", "b": "2", "c": "3"}); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes: buffered values visible before commit, and a
	// missing key is simply absent from the result.
	got, err := tx.GetAll(ctx, "a", "b", "c", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["a"] != "1" || got["b"] != "2" || got["c"] != "3" {
		t.Fatalf("GetAll before commit = %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Committed values through a fresh transaction; a single batch read
	// locks everything it returns.
	tx2 := s.Begin()
	got, err = tx2.GetAll(ctx, "c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["a"] != "1" || got["c"] != "3" {
		t.Fatalf("GetAll after commit = %v", got)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Empty batches are no-ops.
	tx3 := s.Begin()
	if err := tx3.PutAll(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := tx3.GetAll(ctx); err != nil || len(got) != 0 {
		t.Fatalf("empty GetAll = %v, %v", got, err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPutAllConflictSerializes checks the batch write path under
// contention: two Update transactions batch-writing the same keys must
// serialize (the second blocks on the first's X locks), with the retry
// loop absorbing any deadlock abort.
func TestPutAllConflictSerializes(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				err := s.Update(ctx, func(tx *Tx) error {
					return tx.PutAll(ctx, map[string]string{
						"x": strconv.Itoa(w),
						"y": strconv.Itoa(w),
					})
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	tx := s.Begin()
	got, err := tx.GetAll(ctx, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != got["y"] {
		t.Fatalf("batch writes interleaved: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
