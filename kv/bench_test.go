package kv

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkGetPut(b *testing.B) {
	s := Open(Options{DetectEvery: 10 * time.Millisecond})
	defer s.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		key := "k" + strconv.Itoa(i%64)
		if _, _, err := tx.Get(ctx, key); err != nil {
			b.Fatal(err)
		}
		if err := tx.Put(ctx, key, "v"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetPutParallel measures read-modify-write transactions under
// b.RunParallel over a key space wide enough that conflicts are rare —
// the workload the sharded lock table parallelizes across cores.
func BenchmarkGetPutParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := Open(Options{DetectEvery: 10 * time.Millisecond, Shards: shards})
			defer s.Close()
			ctx := context.Background()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					key := "k" + strconv.Itoa(rng.Intn(16*1024))
					err := s.Update(ctx, func(tx *Tx) error {
						if _, _, err := tx.Get(ctx, key); err != nil {
							return err
						}
						return tx.Put(ctx, key, "v")
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkUpdateContended(b *testing.B) {
	s := Open(Options{DetectEvery: time.Millisecond})
	defer s.Close()
	ctx := context.Background()
	const workers = 4
	var wg sync.WaitGroup
	per := b.N/workers + 1
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("c%d", rng.Intn(4))
				err := s.Update(ctx, func(tx *Tx) error {
					v, _, err := tx.Get(ctx, key)
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(v)
					return tx.Put(ctx, key, strconv.Itoa(n+1))
				})
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

func BenchmarkScan(b *testing.B) {
	s := Open(Options{})
	defer s.Close()
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error {
		for i := 0; i < 256; i++ {
			if err := tx.Put(ctx, fmt.Sprintf("k%03d", i), "v"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		kvs, err := tx.Scan(ctx)
		if err != nil || len(kvs) != 256 {
			b.Fatalf("scan: %d, %v", len(kvs), err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
