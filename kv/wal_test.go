package kv

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestWALRecordTypes(t *testing.T) {
	for tt, want := range map[RecType]string{
		RecBegin: "begin", RecWrite: "write", RecDelete: "delete",
		RecCommit: "commit", RecType(9): "RecType(9)",
	} {
		if got := tt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", tt, got, want)
		}
	}
}

func TestWALLogsCommittedWritesOnly(t *testing.T) {
	w := NewWAL()
	s := Open(Options{DetectEvery: time.Millisecond, WAL: w})
	defer s.Close()
	ctx := context.Background()

	// A committed write...
	if err := s.Update(ctx, func(tx *Tx) error { return tx.Put(ctx, "a", "1") }); err != nil {
		t.Fatal(err)
	}
	// ...an aborted one...
	tx := s.Begin()
	if err := tx.Put(ctx, "ghost", "x"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	// ...and a committed delete plus write.
	if err := s.Update(ctx, func(tx *Tx) error {
		if err := tx.Delete(ctx, "a"); err != nil {
			return err
		}
		return tx.Put(ctx, "b", "2")
	}); err != nil {
		t.Fatal(err)
	}

	recs := w.Records()
	for _, r := range recs {
		if r.Key == "ghost" {
			t.Fatalf("aborted write reached the log: %+v", r)
		}
	}
	// begin+write+commit, then begin+2 ops+commit.
	if len(recs) != 7 {
		t.Fatalf("log has %d records: %+v", len(recs), recs)
	}
	if w.Len() != 7 {
		t.Fatalf("Len = %d", w.Len())
	}
	// LSNs are dense and 1-based.
	for i, r := range recs {
		if r.LSN != int64(i+1) {
			t.Fatalf("LSN[%d] = %d", i, r.LSN)
		}
	}
	state := Replay(recs)
	if len(state) != 1 || state["b"] != "2" {
		t.Fatalf("replay = %v", state)
	}
}

func TestRecoverMatchesLiveState(t *testing.T) {
	w := NewWAL()
	s := Open(Options{DetectEvery: time.Millisecond, WAL: w})
	defer s.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		key := "k" + strconv.Itoa(rng.Intn(16))
		if rng.Intn(4) == 0 {
			if err := s.Update(ctx, func(tx *Tx) error { return tx.Delete(ctx, key) }); err != nil {
				t.Fatal(err)
			}
		} else {
			v := strconv.Itoa(i)
			if err := s.Update(ctx, func(tx *Tx) error { return tx.Put(ctx, key, v) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	r := Recover(w, Options{DetectEvery: time.Millisecond})
	defer r.Close()
	live, err := snapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := snapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	if live != recovered {
		t.Fatalf("recovered state differs:\nlive:      %s\nrecovered: %s", live, recovered)
	}
	// The recovered store keeps logging to the same WAL.
	before := w.Len()
	if err := r.Update(ctx, func(tx *Tx) error { return tx.Put(ctx, "post", "1") }); err != nil {
		t.Fatal(err)
	}
	if w.Len() == before {
		t.Fatal("recovered store did not append to the carried-over WAL")
	}
}

func snapshot(s *Store) (string, error) {
	out := ""
	err := s.View(context.Background(), func(tx *Tx) error {
		kvs, err := tx.Scan(context.Background())
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			out += kv.Key + "=" + kv.Value + ";"
		}
		return nil
	})
	return out, err
}

// TestCrashAtomicityEveryPrefix is the recovery acid test: for every
// prefix of a concurrently produced log, replay yields exactly the
// effects of the transactions whose commit record lies inside the
// prefix — never a torn transaction.
func TestCrashAtomicityEveryPrefix(t *testing.T) {
	w := NewWAL()
	s := Open(Options{DetectEvery: time.Millisecond, WAL: w})
	defer s.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				a := "k" + strconv.Itoa(rng.Intn(6))
				b := "k" + strconv.Itoa(rng.Intn(6))
				v := fmt.Sprintf("%d-%d", seed, i)
				// Multi-key transaction: both writes or neither.
				if err := s.Update(ctx, func(tx *Tx) error {
					if err := tx.Put(ctx, a, v); err != nil {
						return err
					}
					return tx.Put(ctx, b, v)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	recs := w.Records()
	committedAt := make(map[int64]bool)
	for cut := 0; cut <= len(recs); cut++ {
		prefix := recs[:cut]
		state := Replay(prefix)
		// Atomicity: for every transaction committed within the prefix,
		// remember it; for every record beyond a commit... the check:
		// values in the state must come in pairs (both keys of a txn
		// carry the same value or were overwritten later). We verify
		// the weaker but sufficient invariant directly: replay of a
		// prefix equals replay of the full log restricted to commits in
		// the prefix.
		for _, r := range prefix {
			if r.Type == RecCommit {
				committedAt[r.Txn] = true
			}
		}
		var filtered []Record
		for _, r := range recs {
			if committedAt[r.Txn] {
				filtered = append(filtered, r)
			}
		}
		want := Replay(filtered)
		if len(state) != len(want) {
			t.Fatalf("cut %d: state size %d, want %d", cut, len(state), len(want))
		}
		for k, v := range want {
			if state[k] != v {
				t.Fatalf("cut %d: state[%q] = %q, want %q", cut, k, state[k], v)
			}
		}
		clear(committedAt)
	}
}

func TestReplayEmptyAndNil(t *testing.T) {
	if got := Replay(nil); len(got) != 0 {
		t.Fatalf("Replay(nil) = %v", got)
	}
	if got := Replay([]Record{{Type: RecWrite, Txn: 1, Key: "a", Val: "1"}}); len(got) != 0 {
		t.Fatalf("uncommitted write replayed: %v", got)
	}
}
