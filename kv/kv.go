// Package kv is a strict two-phase-locked, serializable, in-memory
// key-value store built on the hwtwbg lock manager — the "sequential
// transaction processing" system of the paper made concrete.
//
// Concurrency control is two-level multiple granularity locking:
// readers take IS on the store root and S on the key; writers take IX
// on the root and X on the key; full scans take S on the root, which
// also gives phantom protection (a scan blocks concurrent inserts and
// deletes, because every writer holds IX on the root). Deadlocks —
// including the classic read-then-upgrade conversion deadlock — are
// resolved by the store's background H/W-TWBG detector; victims surface
// as hwtwbg.ErrAborted, and the Update/View helpers retry them with
// jittered backoff.
//
// Writes are buffered in the transaction and applied atomically at
// Commit, so aborting is free and readers never observe dirty data.
package kv

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hwtwbg"
)

// root is the resource representing the whole store (the MGL root).
const root hwtwbg.ResourceID = "kv:/"

func keyResource(key string) hwtwbg.ResourceID {
	return hwtwbg.ResourceID("kv:/" + key)
}

// Options configures a Store.
type Options struct {
	// DetectEvery is the deadlock detection period (default 10ms).
	DetectEvery time.Duration
	// Shards is the lock manager's shard count, rounded up to a power
	// of two (0 derives it from GOMAXPROCS; see hwtwbg.Options.Shards).
	Shards int
	// Detector selects the lock manager's detector activation strategy
	// ("" or hwtwbg.DetectorSnapshot for the snapshot detector,
	// hwtwbg.DetectorSTW for stop-the-world).
	Detector string
	// MaxRetries bounds Update/View retries after deadlock
	// victimization (default 100).
	MaxRetries int
	// JournalSize is the lock manager's flight-recorder capacity in
	// records per ring (0 = default, negative = disabled; see
	// hwtwbg.Options.JournalSize).
	JournalSize int
	// IncrementalSnapshot controls whether the snapshot detector reuses
	// clean shards' regions of its previous copy (default on; see
	// hwtwbg.Options.IncrementalSnapshot).
	IncrementalSnapshot hwtwbg.IncrementalMode
	// WAL, when non-nil, receives a redo record batch for every commit;
	// Recover rebuilds a store from it (the paper's "atomic with
	// respect to the recovery" substrate).
	WAL *WAL
	// History, when non-nil, records every committed transaction's
	// read/write footprint for serializability auditing.
	History *History
	// Tracer, when non-nil, receives the lock manager's tracing hooks
	// (requests, blocks, grants, aborts, detector activations).
	Tracer hwtwbg.Tracer
}

// Store is a transactional key-value store. Create one with Open; all
// methods are safe for concurrent use.
type Store struct {
	lm   *hwtwbg.Manager
	opts Options
	wal  *WAL

	mu   sync.RWMutex
	data map[string]string
}

// Open creates a store and starts its deadlock detector.
func Open(opts Options) *Store {
	if opts.DetectEvery == 0 {
		opts.DetectEvery = 10 * time.Millisecond
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 100
	}
	return &Store{
		lm: hwtwbg.Open(hwtwbg.Options{
			Period: opts.DetectEvery, Detector: opts.Detector, Shards: opts.Shards,
			Tracer: opts.Tracer, JournalSize: opts.JournalSize,
			IncrementalSnapshot: opts.IncrementalSnapshot,
		}),
		opts: opts,
		wal:  opts.WAL,
		data: make(map[string]string),
	}
}

// Close shuts the store down, aborting live transactions.
func (s *Store) Close() { s.lm.Close() }

// Stats returns the deadlock detector's cumulative statistics.
func (s *Store) Stats() hwtwbg.Stats { return s.lm.Stats() }

// Manager exposes the underlying lock manager, for wiring the store
// into diagnostics (lockservice.DebugHandler, expvar publishing).
func (s *Store) Manager() *hwtwbg.Manager { return s.lm }

// MetricsSnapshot returns the lock manager's full metrics snapshot
// (per-shard counters, latency histograms, detector phase breakdown).
func (s *Store) MetricsSnapshot() hwtwbg.MetricsSnapshot { return s.lm.MetricsSnapshot() }

// Len returns the number of keys (unlocked, diagnostic).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// ErrTooManyRetries is returned by Update/View when a closure keeps
// being chosen as a deadlock victim.
var ErrTooManyRetries = errors.New("kv: transaction exceeded retry budget")

// Tx is one transaction. Use it from a single goroutine.
type Tx struct {
	s      *Store
	t      *hwtwbg.Txn
	writes map[string]*string // nil value = delete
	reads  map[string]string  // first-read values, for the history auditor
}

// Begin starts a transaction. Prefer Update/View, which handle retry
// and commit.
func (s *Store) Begin() *Tx {
	return &Tx{s: s, t: s.lm.Begin(), writes: make(map[string]*string)}
}

// SetOpTag attaches an application-defined operation tag to the
// transaction (see hwtwbg.Txn.SetTag): postmortems and `hwtrace
// report` group wait chains by it.
func (tx *Tx) SetOpTag(tag uint64) { tx.t.SetTag(tag) }

// Get returns the value of key. The transaction sees its own buffered
// writes.
func (tx *Tx) Get(ctx context.Context, key string) (string, bool, error) {
	if w, ok := tx.writes[key]; ok {
		if w == nil {
			return "", false, nil
		}
		return *w, true, nil
	}
	if err := tx.t.Lock(ctx, root, hwtwbg.IS); err != nil {
		return "", false, err
	}
	if err := tx.t.Lock(ctx, keyResource(key), hwtwbg.S); err != nil {
		return "", false, err
	}
	tx.s.mu.RLock()
	defer tx.s.mu.RUnlock()
	v, ok := tx.s.data[key]
	if tx.s.opts.History != nil {
		if tx.reads == nil {
			tx.reads = make(map[string]string)
		}
		if _, seen := tx.reads[key]; !seen {
			tx.reads[key] = v // "" when absent
		}
	}
	return v, ok, nil
}

// GetAll returns the values of every key in keys, omitting absent ones.
// All key locks (plus IS on the root) are acquired in one LockAll
// batch — one shard-mutex round per shard instead of one per key — and
// the transaction sees its own buffered writes, exactly as Get does.
func (tx *Tx) GetAll(ctx context.Context, keys ...string) (map[string]string, error) {
	out := make(map[string]string, len(keys))
	reqs := make([]hwtwbg.LockRequest, 0, len(keys)+1)
	reqs = append(reqs, hwtwbg.LockRequest{Resource: root, Mode: hwtwbg.IS})
	need := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, ok := tx.writes[k]; ok {
			continue // served from the write buffer; no lock needed
		}
		need = append(need, k)
	}
	// Sorted key order keeps the lock footprint deterministic for a
	// given key set (LockAll itself re-sorts by shard).
	sort.Strings(need)
	for _, k := range need {
		reqs = append(reqs, hwtwbg.LockRequest{Resource: keyResource(k), Mode: hwtwbg.S})
	}
	if err := tx.t.LockAll(ctx, reqs); err != nil {
		return nil, err
	}
	tx.s.mu.RLock()
	for _, k := range need {
		v, ok := tx.s.data[k]
		if tx.s.opts.History != nil {
			if tx.reads == nil {
				tx.reads = make(map[string]string)
			}
			if _, seen := tx.reads[k]; !seen {
				tx.reads[k] = v // "" when absent
			}
		}
		if ok {
			out[k] = v
		}
	}
	tx.s.mu.RUnlock()
	for _, k := range keys {
		if w, ok := tx.writes[k]; ok && w != nil {
			out[k] = *w
		}
	}
	return out, nil
}

// PutAll buffers writes of every entry in kvs, acquiring all the write
// locks (IX on the root plus X per key) in one LockAll batch.
func (tx *Tx) PutAll(ctx context.Context, kvs map[string]string) error {
	if len(kvs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	reqs := make([]hwtwbg.LockRequest, 0, len(keys)+1)
	reqs = append(reqs, hwtwbg.LockRequest{Resource: root, Mode: hwtwbg.IX})
	for _, k := range keys {
		reqs = append(reqs, hwtwbg.LockRequest{Resource: keyResource(k), Mode: hwtwbg.X})
	}
	if err := tx.t.LockAll(ctx, reqs); err != nil {
		return err
	}
	for _, k := range keys {
		v := kvs[k]
		tx.writes[k] = &v
	}
	return nil
}

// Put buffers a write of key = value.
func (tx *Tx) Put(ctx context.Context, key, value string) error {
	if err := tx.lockWrite(ctx, key); err != nil {
		return err
	}
	v := value
	tx.writes[key] = &v
	return nil
}

// Delete buffers a deletion of key.
func (tx *Tx) Delete(ctx context.Context, key string) error {
	if err := tx.lockWrite(ctx, key); err != nil {
		return err
	}
	tx.writes[key] = nil
	return nil
}

func (tx *Tx) lockWrite(ctx context.Context, key string) error {
	if err := tx.t.Lock(ctx, root, hwtwbg.IX); err != nil {
		return err
	}
	return tx.t.Lock(ctx, keyResource(key), hwtwbg.X)
}

// Scan returns every key-value pair in sorted key order, merged with
// the transaction's own writes. It takes S on the store root, so it is
// phantom-safe: no concurrent transaction can commit an insert or
// delete while the scanning transaction lives.
func (tx *Tx) Scan(ctx context.Context) ([]KV, error) {
	if err := tx.t.Lock(ctx, root, hwtwbg.S); err != nil {
		return nil, err
	}
	tx.s.mu.RLock()
	merged := make(map[string]string, len(tx.s.data))
	for k, v := range tx.s.data {
		merged[k] = v
	}
	tx.s.mu.RUnlock()
	for k, w := range tx.writes {
		if w == nil {
			delete(merged, k)
		} else {
			merged[k] = *w
		}
	}
	out := make([]KV, 0, len(merged))
	for k, v := range merged {
		out = append(out, KV{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// KV is one key-value pair.
type KV struct {
	Key, Value string
}

// Commit applies the buffered writes atomically and releases all locks.
func (tx *Tx) Commit() error {
	// The data mutex is held across the lock-level commit: readers take
	// their locks first and the data mutex second (never nested the
	// other way), so a reader granted by our release blocks on s.mu
	// until the whole batch is applied — no half-applied state is ever
	// observable, and nothing is applied if the commit fails.
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	if err := tx.t.Commit(); err != nil {
		return err
	}
	if tx.s.wal != nil && len(tx.writes) > 0 {
		tx.s.wal.logCommit(tx.writes)
	}
	if tx.s.opts.History != nil {
		tx.s.opts.History.record(tx.reads, tx.writes)
	}
	for k, w := range tx.writes {
		if w == nil {
			delete(tx.s.data, k)
		} else {
			tx.s.data[k] = *w
		}
	}
	return nil
}

// Abort drops the buffered writes and releases all locks.
func (tx *Tx) Abort() { tx.t.Abort() }

// Err reports the transaction's terminal error (nil while live).
func (tx *Tx) Err() error { return tx.t.Err() }

// Update runs fn inside a read-write transaction, committing on success
// and retrying (with jittered backoff) when the transaction is chosen
// as a deadlock victim. fn may be invoked multiple times and must not
// keep side effects outside the transaction.
func (s *Store) Update(ctx context.Context, fn func(tx *Tx) error) error {
	return s.retry(ctx, fn)
}

// View runs fn inside a transaction for reading. It is identical to
// Update except in name; writes performed by fn are still applied (the
// name documents intent).
func (s *Store) View(ctx context.Context, fn func(tx *Tx) error) error {
	return s.retry(ctx, fn)
}

func (s *Store) retry(ctx context.Context, fn func(tx *Tx) error) error {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 1; attempt <= s.opts.MaxRetries; attempt++ {
		tx := s.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				tx.t.Recycle()
				return nil
			}
		} else {
			tx.Abort()
		}
		tx.t.Recycle() // no-op unless the transaction reached a terminal state
		if !errors.Is(err, hwtwbg.ErrAborted) {
			return err
		}
		// Deadlock victim: back off and retry.
		backoff := time.Duration(rng.Intn(attempt*500)+100) * time.Microsecond
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
	}
	return ErrTooManyRetries
}
