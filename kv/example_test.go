package kv_test

import (
	"context"
	"fmt"
	"time"

	"hwtwbg/kv"
)

// Example shows the Update/View closure API with automatic deadlock
// retry.
func Example() {
	store := kv.Open(kv.Options{DetectEvery: 5 * time.Millisecond})
	defer store.Close()
	ctx := context.Background()

	err := store.Update(ctx, func(tx *kv.Tx) error {
		if err := tx.Put(ctx, "alice", "100"); err != nil {
			return err
		}
		return tx.Put(ctx, "bob", "50")
	})
	if err != nil {
		panic(err)
	}

	var balance string
	if err := store.View(ctx, func(tx *kv.Tx) error {
		v, _, err := tx.Get(ctx, "alice")
		balance = v
		return err
	}); err != nil {
		panic(err)
	}
	fmt.Println("alice:", balance)
	// Output:
	// alice: 100
}

// ExampleTx_Scan lists the store contents in key order, isolated from
// concurrent inserts by the MGL root lock.
func ExampleTx_Scan() {
	store := kv.Open(kv.Options{})
	defer store.Close()
	ctx := context.Background()

	if err := store.Update(ctx, func(tx *kv.Tx) error {
		for _, kvp := range []struct{ k, v string }{{"c", "3"}, {"a", "1"}, {"b", "2"}} {
			if err := tx.Put(ctx, kvp.k, kvp.v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		panic(err)
	}

	store.View(ctx, func(tx *kv.Tx) error {
		kvs, err := tx.Scan(ctx)
		if err != nil {
			return err
		}
		for _, p := range kvs {
			fmt.Printf("%s=%s\n", p.Key, p.Value)
		}
		return nil
	})
	// Output:
	// a=1
	// b=2
	// c=3
}
