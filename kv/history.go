package kv

import (
	"fmt"
	"sync"
)

// History records, for every committed transaction, the values it read
// and the writes it installed, stamped with its commit sequence number.
// CheckSerializable then verifies the execution was serializable in
// commit order: each transaction must have read exactly the values left
// by the transactions committed before it. Strict two-phase locking
// guarantees this; the auditor turns the guarantee into a checkable
// artifact for tests and examples.
//
// Enable it with Options.History; the recording cost is one map copy
// per commit.
type History struct {
	mu      sync.Mutex
	entries []HistoryEntry
	seq     int64
}

// HistoryEntry is one committed transaction's footprint.
type HistoryEntry struct {
	Seq    int64              // commit order, 1-based
	Reads  map[string]string  // key -> value observed (first read)
	Writes map[string]*string // key -> value written (nil = delete)
}

// NewHistory returns an empty history recorder.
func NewHistory() *History { return &History{} }

// Len returns the number of committed transactions recorded.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// Entries returns a copy of the recorded footprints in commit order.
func (h *History) Entries() []HistoryEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryEntry, len(h.entries))
	copy(out, h.entries)
	return out
}

// record appends one committed transaction. Called under the store's
// data mutex, so commit order here equals apply order.
func (h *History) record(reads map[string]string, writes map[string]*string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	e := HistoryEntry{
		Seq:    h.seq,
		Reads:  make(map[string]string, len(reads)),
		Writes: make(map[string]*string, len(writes)),
	}
	for k, v := range reads {
		e.Reads[k] = v
	}
	for k, v := range writes {
		if v == nil {
			e.Writes[k] = nil
		} else {
			vv := *v
			e.Writes[k] = &vv
		}
	}
	h.entries = append(h.entries, e)
}

// CheckSerializable verifies the recorded execution is equivalent to
// the serial execution in commit order: replaying writes in sequence,
// every transaction's recorded reads must match the state at its
// position. It returns nil or an error naming the first violation.
func (h *History) CheckSerializable() error {
	state := make(map[string]string)
	for _, e := range h.Entries() {
		for k, saw := range e.Reads {
			cur, ok := state[k]
			if !ok {
				cur = "" // absent reads record ""
			}
			if saw != cur {
				return fmt.Errorf("kv: serializability violation: txn %d read %q=%q, serial state has %q",
					e.Seq, k, saw, cur)
			}
		}
		for k, v := range e.Writes {
			if v == nil {
				delete(state, k)
			} else {
				state[k] = *v
			}
		}
	}
	return nil
}
