package kv

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestHistoryRecordsFootprints(t *testing.T) {
	h := NewHistory()
	s := Open(Options{DetectEvery: time.Millisecond, History: h})
	defer s.Close()
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error { return tx.Put(ctx, "a", "1") }); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(ctx, func(tx *Tx) error {
		v, _, err := tx.Get(ctx, "a")
		if err != nil {
			return err
		}
		return tx.Put(ctx, "b", v+"!")
	}); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("history has %d entries", h.Len())
	}
	es := h.Entries()
	if es[1].Reads["a"] != "1" {
		t.Fatalf("entry 2 reads = %v", es[1].Reads)
	}
	if got := *es[1].Writes["b"]; got != "1!" {
		t.Fatalf("entry 2 writes = %v", got)
	}
	if err := h.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSerializableDetectsViolations(t *testing.T) {
	h := NewHistory()
	one := "1"
	h.record(nil, map[string]*string{"a": &one})
	h.record(map[string]string{"a": "WRONG"}, nil)
	if err := h.CheckSerializable(); err == nil {
		t.Fatal("fabricated anomaly not detected")
	}
	// Deletes replay as absence.
	h2 := NewHistory()
	h2.record(nil, map[string]*string{"a": &one})
	h2.record(nil, map[string]*string{"a": nil})
	h2.record(map[string]string{"a": ""}, nil)
	if err := h2.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}

// TestSerializabilityUnderContention is the end-to-end audit: a
// deadlock-heavy concurrent workload whose every committed transaction
// must have read exactly the serial-order state (experiment-level proof
// that strict 2PL + the H/W-TWBG detector preserves serializability).
func TestSerializabilityUnderContention(t *testing.T) {
	h := NewHistory()
	s := Open(Options{DetectEvery: time.Millisecond, History: h})
	defer s.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				a := "k" + strconv.Itoa(rng.Intn(5))
				b := "k" + strconv.Itoa(rng.Intn(5))
				if err := s.Update(ctx, func(tx *Tx) error {
					va, _, err := tx.Get(ctx, a)
					if err != nil {
						return err
					}
					vb, _, err := tx.Get(ctx, b)
					if err != nil {
						return err
					}
					time.Sleep(100 * time.Microsecond)
					if err := tx.Put(ctx, a, vb+"|"); err != nil {
						return err
					}
					return tx.Put(ctx, b, va+"-")
				}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if h.Len() < 8*30 {
		t.Fatalf("history recorded %d commits, want %d", h.Len(), 8*30)
	}
	if err := h.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	t.Logf("serializable across %d commits with %d deadlock aborts (%+v)", h.Len(), st.Aborted, st)
	if st.Aborted == 0 {
		t.Log("note: no deadlocks formed on this run")
	}
}

func TestHistoryReadYourWritesNotRecordedAsReads(t *testing.T) {
	h := NewHistory()
	s := Open(Options{DetectEvery: time.Millisecond, History: h})
	defer s.Close()
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *Tx) error {
		if err := tx.Put(ctx, "x", "mine"); err != nil {
			return err
		}
		v, _, err := tx.Get(ctx, "x") // served from the write buffer
		if err != nil {
			return err
		}
		if v != "mine" {
			return fmt.Errorf("read-your-writes broken: %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	es := h.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %d", len(es))
	}
	if _, ok := es[0].Reads["x"]; ok {
		t.Fatal("own-buffer read recorded as an external read")
	}
	if err := h.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}
