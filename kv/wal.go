package kv

import (
	"fmt"
	"sort"
	"sync"
)

// The paper's very first sentence defines a transaction as "a sequence
// of database operations which is atomic with respect to the recovery".
// This file supplies that substrate for the kv store: a redo-only
// write-ahead log. All of a transaction's writes are logged before its
// commit record, and recovery replays only transactions whose commit
// record made it to the log — so a crash at ANY log prefix yields a
// state containing exactly the effects of the transactions committed in
// that prefix (atomicity + durability of the in-memory "disk").

// RecType is a WAL record type.
type RecType uint8

// WAL record types.
const (
	RecBegin RecType = iota
	RecWrite
	RecDelete
	RecCommit
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecWrite:
		return "write"
	case RecDelete:
		return "delete"
	case RecCommit:
		return "commit"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is one WAL entry.
type Record struct {
	LSN  int64 // log sequence number, 1-based
	Type RecType
	Txn  int64 // commit sequence of the writing transaction
	Key  string
	Val  string // RecWrite only
}

// WAL is an append-only redo log. It stands in for stable storage: the
// in-memory record slice is the "disk". It is safe for concurrent use.
type WAL struct {
	mu   sync.Mutex
	recs []Record
	next int64 // next LSN
	txns int64 // commit sequence counter
}

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{next: 1} }

// Len returns the number of records on the log.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// Records returns a stable-storage copy of the whole log.
func (w *WAL) Records() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Record(nil), w.recs...)
}

// logCommit atomically appends begin + one record per buffered write +
// commit. Callers serialize on the store's data mutex, which is held
// across the lock-level commit, the log append and the data apply — so
// log order equals apply order equals the serialization order of
// conflicting transactions.
func (w *WAL) logCommit(writes map[string]*string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.txns++
	txn := w.txns
	app := func(t RecType, k, v string) {
		w.recs = append(w.recs, Record{LSN: w.next, Type: t, Txn: txn, Key: k, Val: v})
		w.next++
	}
	app(RecBegin, "", "")
	// Log the write set in key order: the map's iteration order must not
	// leak into the record sequence, or identical runs would produce
	// different logs (and Records diffs in tests would be meaningless).
	keys := make([]string, 0, len(writes))
	for k := range writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if val := writes[k]; val == nil {
			app(RecDelete, k, "")
		} else {
			app(RecWrite, k, *val)
		}
	}
	app(RecCommit, "", "")
}

// Replay folds a log prefix into the state it describes: the effects of
// every transaction whose commit record is inside the prefix, in log
// order; writes of uncommitted (crashed) transactions are ignored.
func Replay(recs []Record) map[string]string {
	committed := make(map[int64]bool)
	for _, r := range recs {
		if r.Type == RecCommit {
			committed[r.Txn] = true
		}
	}
	state := make(map[string]string)
	for _, r := range recs {
		if !committed[r.Txn] {
			continue
		}
		switch r.Type {
		case RecWrite:
			state[r.Key] = r.Val
		case RecDelete:
			delete(state, r.Key)
		}
	}
	return state
}

// Recover builds a fresh store whose contents are the replay of the
// given log records, using the provided options for the new store's
// detector. The log itself carries over so the recovered store keeps
// appending to the same history.
func Recover(w *WAL, opts Options) *Store {
	s := Open(opts)
	s.wal = w
	s.mu.Lock()
	s.data = Replay(w.Records())
	s.mu.Unlock()
	return s
}
