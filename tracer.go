package hwtwbg

import (
	"log/slog"
	"time"

	"hwtwbg/journal"
)

// Tracer receives lock-manager lifecycle hooks. Set one with
// Options.Tracer to stream requests, blocks, grants, aborts and
// detector activations into logging, tracing or custom accounting.
//
// Every hook is invoked outside the shard mutexes and the stats mutex
// — the same discipline as Options.OnVictim — so a slow tracer can
// delay only the transaction that triggered the hook, never block the
// lock table, and a tracer may safely call the Manager's read-side
// (Stats, MetricsSnapshot, History). Hooks fire from whatever goroutine
// performed the operation; implementations must be goroutine-safe.
//
// A nil Options.Tracer costs one predictable branch per operation; see
// EXPERIMENTS.md E20 for the measured overhead of an attached tracer.
// The built-in flight recorder follows the same design: a disabled
// journal (Options.JournalSize < 0) costs one predictable nil-check
// branch per emission site, and an enabled one adds only a stack-built
// record and a lock-free ring write — no allocation either way; see
// EXPERIMENTS.md E22 for the journal on/off measurement.
type Tracer interface {
	// OnRequest fires when a transaction asks for a lock (Lock or
	// TryLock), before the request reaches the lock table.
	OnRequest(txn TxnID, r ResourceID, m Mode)
	// OnBlock fires when a lock request blocks. depth counts the
	// requests in line at enqueue time including this one: the queue
	// length for a fresh requestor, the blocked-upgrader prefix length
	// for a blocked conversion.
	OnBlock(txn TxnID, r ResourceID, m Mode, depth int)
	// OnGrant fires when a lock request is granted; wait is zero for
	// immediate grants, otherwise the time the request spent blocked.
	OnGrant(txn TxnID, r ResourceID, m Mode, wait time.Duration)
	// OnAbort fires when a transaction's owner observes its abort: an
	// explicit Abort, a context cancellation mid-wait, or — one hook
	// invocation later than OnVictim — when the owner of a deadlock
	// victim sees ErrAborted.
	OnAbort(txn TxnID)
	// OnActivation fires after every detector activation with its
	// phase-timing report.
	OnActivation(ActivationReport)
}

// SlogTracer is a ready-made Tracer that logs to a *slog.Logger:
// blocks, waited grants, aborts and detector activations at Info,
// per-request chatter (OnRequest, immediate OnGrant) at Debug.
type SlogTracer struct {
	L *slog.Logger
}

// NewSlogTracer returns a tracer logging to l (slog.Default() when
// nil).
func NewSlogTracer(l *slog.Logger) *SlogTracer {
	if l == nil {
		l = slog.Default()
	}
	return &SlogTracer{L: l}
}

func (s *SlogTracer) OnRequest(txn TxnID, r ResourceID, m Mode) {
	s.L.Debug("lock request", "txn", int(txn), "resource", string(r), "mode", m.String())
}

func (s *SlogTracer) OnBlock(txn TxnID, r ResourceID, m Mode, depth int) {
	s.L.Info("lock blocked", "txn", int(txn), "resource", string(r), "mode", m.String(), "depth", depth)
}

func (s *SlogTracer) OnGrant(txn TxnID, r ResourceID, m Mode, wait time.Duration) {
	if wait == 0 {
		s.L.Debug("lock granted", "txn", int(txn), "resource", string(r), "mode", m.String())
		return
	}
	s.L.Info("lock granted after wait", "txn", int(txn), "resource", string(r), "mode", m.String(), "wait", wait)
}

func (s *SlogTracer) OnAbort(txn TxnID) {
	s.L.Info("txn aborted", "txn", int(txn))
}

func (s *SlogTracer) OnActivation(rep ActivationReport) {
	s.L.Info("detector activation",
		"seq", rep.Seq,
		"total", rep.Total,
		"acquire", rep.Acquire,
		"build", rep.Build,
		"search", rep.Search,
		"resolve", rep.Resolve,
		"wake", rep.Wake,
		"vertices", rep.Vertices,
		"edges", rep.Edges,
		"cycles", rep.CyclesSearched,
		"aborted", rep.Aborted,
		"repositioned", rep.Repositioned,
		"salvaged", rep.Salvaged)
}

// JournalTracer is a ready-made Tracer that mirrors every lifecycle
// hook into a flight-recorder ring as journal records. The manager
// journals natively (Options.JournalSize), so the adapter exists for
// composition: tee lock events into a journal owned by the application
// (a longer-retention ring, a per-tenant ring), or journal a manager
// whose built-in recorder is disabled, while still chaining to another
// tracer. Hook records carry the same kinds the built-in recorder
// writes, so cmd/hwtrace and journal.BuildTrace consume either source.
//
// Like every Tracer, its hooks run outside the shard mutexes; each hook
// is one stack-built record and one lock-free, allocation-free ring
// write.
type JournalTracer struct {
	// Ring receives the records (journal.NewRing, or one ring of a
	// journal.Journal). Hooks are dropped while Ring is nil.
	Ring *journal.Ring
	// Next, when non-nil, receives every hook after it is journaled.
	Next Tracer
}

func (j *JournalTracer) OnRequest(txn TxnID, r ResourceID, m Mode) {
	if j.Ring != nil {
		rec := journal.Record{Txn: int64(txn), Kind: journal.KindRequest, Mode: uint8(m)}
		rec.SetResource(string(r))
		j.Ring.Emit(&rec)
	}
	if j.Next != nil {
		j.Next.OnRequest(txn, r, m)
	}
}

func (j *JournalTracer) OnBlock(txn TxnID, r ResourceID, m Mode, depth int) {
	if j.Ring != nil {
		rec := journal.Record{Txn: int64(txn), Arg: uint64(depth), Kind: journal.KindBlock, Mode: uint8(m)}
		rec.SetResource(string(r))
		j.Ring.Emit(&rec)
	}
	if j.Next != nil {
		j.Next.OnBlock(txn, r, m, depth)
	}
}

func (j *JournalTracer) OnGrant(txn TxnID, r ResourceID, m Mode, wait time.Duration) {
	if j.Ring != nil {
		rec := journal.Record{Txn: int64(txn), Arg: uint64(wait), Kind: journal.KindGrant, Mode: uint8(m)}
		rec.SetResource(string(r))
		j.Ring.Emit(&rec)
	}
	if j.Next != nil {
		j.Next.OnGrant(txn, r, m, wait)
	}
}

func (j *JournalTracer) OnAbort(txn TxnID) {
	if j.Ring != nil {
		rec := journal.Record{Txn: int64(txn), Kind: journal.KindAbort}
		j.Ring.Emit(&rec)
	}
	if j.Next != nil {
		j.Next.OnAbort(txn)
	}
}

func (j *JournalTracer) OnActivation(rep ActivationReport) {
	if j.Ring != nil {
		rec := journal.Record{
			TS:   rep.Time.UnixNano(),
			Txn:  int64(rep.Seq),
			Arg:  uint64(rep.Total),
			Kind: journal.KindDetect,
			Aux:  uint32(rep.CyclesSearched),
		}
		j.Ring.Emit(&rec)
	}
	if j.Next != nil {
		j.Next.OnActivation(rep)
	}
}
