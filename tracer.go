package hwtwbg

import (
	"log/slog"
	"time"
)

// Tracer receives lock-manager lifecycle hooks. Set one with
// Options.Tracer to stream requests, blocks, grants, aborts and
// detector activations into logging, tracing or custom accounting.
//
// Every hook is invoked outside the shard mutexes and the stats mutex
// — the same discipline as Options.OnVictim — so a slow tracer can
// delay only the transaction that triggered the hook, never block the
// lock table, and a tracer may safely call the Manager's read-side
// (Stats, MetricsSnapshot, History). Hooks fire from whatever goroutine
// performed the operation; implementations must be goroutine-safe.
//
// A nil Options.Tracer costs one predictable branch per operation; see
// EXPERIMENTS.md E20 for the measured overhead of an attached tracer.
type Tracer interface {
	// OnRequest fires when a transaction asks for a lock (Lock or
	// TryLock), before the request reaches the lock table.
	OnRequest(txn TxnID, r ResourceID, m Mode)
	// OnBlock fires when a lock request blocks. depth counts the
	// requests in line at enqueue time including this one: the queue
	// length for a fresh requestor, the blocked-upgrader prefix length
	// for a blocked conversion.
	OnBlock(txn TxnID, r ResourceID, m Mode, depth int)
	// OnGrant fires when a lock request is granted; wait is zero for
	// immediate grants, otherwise the time the request spent blocked.
	OnGrant(txn TxnID, r ResourceID, m Mode, wait time.Duration)
	// OnAbort fires when a transaction's owner observes its abort: an
	// explicit Abort, a context cancellation mid-wait, or — one hook
	// invocation later than OnVictim — when the owner of a deadlock
	// victim sees ErrAborted.
	OnAbort(txn TxnID)
	// OnActivation fires after every detector activation with its
	// phase-timing report.
	OnActivation(ActivationReport)
}

// SlogTracer is a ready-made Tracer that logs to a *slog.Logger:
// blocks, waited grants, aborts and detector activations at Info,
// per-request chatter (OnRequest, immediate OnGrant) at Debug.
type SlogTracer struct {
	L *slog.Logger
}

// NewSlogTracer returns a tracer logging to l (slog.Default() when
// nil).
func NewSlogTracer(l *slog.Logger) *SlogTracer {
	if l == nil {
		l = slog.Default()
	}
	return &SlogTracer{L: l}
}

func (s *SlogTracer) OnRequest(txn TxnID, r ResourceID, m Mode) {
	s.L.Debug("lock request", "txn", int(txn), "resource", string(r), "mode", m.String())
}

func (s *SlogTracer) OnBlock(txn TxnID, r ResourceID, m Mode, depth int) {
	s.L.Info("lock blocked", "txn", int(txn), "resource", string(r), "mode", m.String(), "depth", depth)
}

func (s *SlogTracer) OnGrant(txn TxnID, r ResourceID, m Mode, wait time.Duration) {
	if wait == 0 {
		s.L.Debug("lock granted", "txn", int(txn), "resource", string(r), "mode", m.String())
		return
	}
	s.L.Info("lock granted after wait", "txn", int(txn), "resource", string(r), "mode", m.String(), "wait", wait)
}

func (s *SlogTracer) OnAbort(txn TxnID) {
	s.L.Info("txn aborted", "txn", int(txn))
}

func (s *SlogTracer) OnActivation(rep ActivationReport) {
	s.L.Info("detector activation",
		"seq", rep.Seq,
		"total", rep.Total,
		"acquire", rep.Acquire,
		"build", rep.Build,
		"search", rep.Search,
		"resolve", rep.Resolve,
		"wake", rep.Wake,
		"vertices", rep.Vertices,
		"edges", rep.Edges,
		"cycles", rep.CyclesSearched,
		"aborted", rep.Aborted,
		"repositioned", rep.Repositioned,
		"salvaged", rep.Salvaged)
}
