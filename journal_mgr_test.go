package hwtwbg

import (
	"context"
	"testing"

	"hwtwbg/journal"
)

// jev is the journal-record shape the sequence tests compare: kind,
// transaction, resource and the kind-specific argument.
type jev struct {
	kind journal.Kind
	txn  int64
	res  string
	arg  uint64
}

func summarize(recs []journal.Record) []jev {
	out := make([]jev, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		e := jev{kind: r.Kind, txn: r.Txn, res: r.Resource()}
		// Only assert arguments that are deterministic: queue depths and
		// cycle-edge targets. Wait durations and phase timings vary.
		switch r.Kind {
		case journal.KindBlock, journal.KindCycleEdge:
			e.arg = r.Arg
		}
		out = append(out, e)
	}
	return out
}

func diffSeq(t *testing.T, got, want []jev) {
	t.Helper()
	for i := 0; i < len(got) || i < len(want); i++ {
		switch {
		case i >= len(want):
			t.Errorf("event %d: extra %+v", i, got[i])
		case i >= len(got):
			t.Errorf("event %d: missing %+v", i, want[i])
		case got[i] != want[i]:
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestJournalDisabled checks that a negative JournalSize turns the
// flight recorder off completely: no journal, no postmortems, and the
// lock path still works.
func TestJournalDisabled(t *testing.T) {
	m := Open(Options{JournalSize: -1})
	defer m.Close()
	if m.Journal() != nil {
		t.Fatal("Journal() non-nil with JournalSize -1")
	}
	tx := m.Begin()
	if err := tx.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if pms, total := m.Postmortems(); len(pms) != 0 || total != 0 {
		t.Fatalf("Postmortems() = %d (total %d), want none", len(pms), total)
	}
}

// TestJournalEventSequence pins the exact record sequence the flight
// recorder captures for the Example 4.1 miniature (the TDR-2 scenario
// of TestTDR2Repositioning) on a single shard: every begin, grant and
// block during the build-up, then the detector's activation, cycle
// evidence and repositioning, then the waited grant it releases. The
// unwind (commits racing waiter wake-ups) is checked as a set — their
// relative timestamps are scheduler-dependent.
func TestJournalEventSequence(t *testing.T) {
	m := Open(Options{Shards: 1})
	defer m.Close()
	ctx := context.Background()

	t1 := m.Begin()
	t2 := m.Begin()
	t3 := m.Begin()
	if err := t1.Lock(ctx, "q", IS); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(ctx, "h", X); err != nil {
		t.Fatal(err)
	}
	lockErr := make(chan error, 3)
	go func() { lockErr <- t2.Lock(ctx, "q", X) }()
	waitBlocked(t, m, t2.ID())
	go func() { lockErr <- t3.Lock(ctx, "q", S) }()
	waitBlocked(t, m, t3.ID())
	go func() { lockErr <- t1.Lock(ctx, "h", S) }() // closes the cycle
	waitBlocked(t, m, t1.ID())

	// Phase 1: the build-up. Lazy begin records appear with the first
	// lock request of each transaction, one nanosecond ahead of it.
	buildUp := []jev{
		{journal.KindBegin, 1, "", 0},
		{journal.KindGrant, 1, "q", 0},
		{journal.KindBegin, 3, "", 0},
		{journal.KindGrant, 3, "h", 0},
		{journal.KindBegin, 2, "", 0},
		{journal.KindBlock, 2, "q", 1},
		{journal.KindBlock, 3, "q", 2},
		{journal.KindBlock, 1, "h", 1},
	}
	diffSeq(t, summarize(m.Journal().Snapshot()), buildUp)
	if t.Failed() {
		t.Fatal("build-up sequence mismatch")
	}

	// Phase 2: one manual activation resolves the deadlock by
	// repositioning T3's compatible S ahead of T2's X on q. The detector
	// journals its activation, the resolved cycle's edges (evidence for
	// the postmortem) and the repositioning, all timestamped at the
	// activation; the grant it releases follows.
	if st := m.Detect(); st.Repositioned != 1 || st.Aborted != 0 {
		t.Fatalf("Detect() = %+v, want one repositioning", st)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("repositioned lock: %v", err)
	}
	afterDetect := append(append([]jev{}, buildUp...),
		jev{journal.KindDetect, 1, "", 0},
		jev{journal.KindReposition, 3, "q", 0},
		jev{journal.KindCycleEdge, 1, "q", 2},
		jev{journal.KindCycleEdge, 2, "q", 3},
		jev{journal.KindCycleEdge, 3, "h", 1},
		jev{journal.KindGrant, 3, "q", 0},
	)
	diffSeq(t, summarize(m.Journal().Snapshot()), afterDetect)
	if t.Failed() {
		t.Fatal("post-detection sequence mismatch")
	}

	// Phase 3: unwind. Commit records race the waited grants they
	// release, so only membership is asserted.
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := map[jev]int{
		{journal.KindCommit, 1, "", 0}: 1,
		{journal.KindCommit, 2, "", 0}: 1,
		{journal.KindCommit, 3, "", 0}: 1,
		{journal.KindGrant, 1, "h", 0}: 1,
		{journal.KindGrant, 2, "q", 0}: 1,
	}
	final := summarize(m.Journal().Snapshot())
	if len(final) != len(afterDetect)+5 {
		t.Fatalf("final snapshot has %d records, want %d", len(final), len(afterDetect)+5)
	}
	for _, e := range final[len(afterDetect):] {
		if want[e] == 0 {
			t.Errorf("unexpected unwind record %+v", e)
			continue
		}
		want[e]--
	}
	for e, n := range want {
		if n != 0 {
			t.Errorf("missing unwind record %+v", e)
		}
	}
}

// TestJournalPostmortem drives a plain write-write deadlock (no
// compatible junction, so TDR-2 cannot apply and a victim dies) and
// checks the generated postmortem: the victim, the cycle edges with
// their journal evidence, and the participant-restricted tail.
func TestJournalPostmortem(t *testing.T) {
	m := Open(Options{Shards: 1})
	defer m.Close()
	ctx := context.Background()

	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(ctx, "u", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "v", X); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	go func() { errc <- a.Lock(ctx, "v", X) }()
	waitBlocked(t, m, a.ID())
	go func() { errc <- b.Lock(ctx, "u", X) }()
	waitBlocked(t, m, b.ID())

	if st := m.Detect(); st.Aborted != 1 {
		t.Fatalf("Detect() = %+v, want one abort", st)
	}
	// Drain both lock attempts; exactly one dies.
	if err1, err2 := <-errc, <-errc; (err1 == nil) == (err2 == nil) {
		t.Fatalf("lock results %v / %v, want exactly one ErrAborted", err1, err2)
	}

	pms, total := m.Postmortems()
	if total != 1 || len(pms) != 1 {
		t.Fatalf("Postmortems() = %d reports (total %d), want 1", len(pms), total)
	}
	pm := pms[0]
	if pm.TDR2 {
		t.Fatal("postmortem claims TDR-2 for a victim abort")
	}
	if pm.Victim != a.ID() && pm.Victim != b.ID() {
		t.Fatalf("victim %d is not a participant", pm.Victim)
	}
	if pm.Activation != 1 {
		t.Fatalf("activation = %d, want 1", pm.Activation)
	}
	if len(pm.Cycle) == 0 {
		t.Fatal("postmortem has no cycle edges")
	}
	evidence := 0
	for _, e := range pm.Cycle {
		if e.Resource != "u" && e.Resource != "v" {
			t.Errorf("cycle edge resource %q, want u or v", e.Resource)
		}
		evidence += len(e.Evidence)
	}
	if evidence == 0 {
		t.Fatal("no journal evidence attached to any cycle edge")
	}
	if len(pm.Tail) == 0 {
		t.Fatal("postmortem tail is empty")
	}
	for _, ev := range pm.Tail {
		if ev.Txn != a.ID() && ev.Txn != b.ID() {
			t.Errorf("tail event for non-participant T%d", ev.Txn)
		}
	}
	b.Abort()
	a.Abort()
}

// TestJournalTracerAdapter checks the JournalTracer tee: a manager with
// its built-in recorder disabled still journals through the adapter,
// and the chained tracer sees every hook.
func TestJournalTracerAdapter(t *testing.T) {
	ring := journal.NewRing(64, 0)
	next := &countingTracer{}
	m := Open(Options{JournalSize: -1, Tracer: &JournalTracer{Ring: ring, Next: next}})
	defer m.Close()
	tx := m.Begin()
	if err := tx.Lock(context.Background(), "adapter", X); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	recs := ring.Snapshot(nil)
	kinds := map[journal.Kind]int{}
	for i := range recs {
		kinds[recs[i].Kind]++
	}
	if kinds[journal.KindRequest] != 1 || kinds[journal.KindGrant] != 1 {
		t.Fatalf("adapter journaled %v, want one request and one grant", kinds)
	}
	if recs[0].Resource() != "adapter" {
		t.Fatalf("resource %q, want adapter", recs[0].Resource())
	}
	if next.events.Load() != 2 { // OnRequest + OnGrant
		t.Fatalf("chained tracer saw %d hooks, want 2", next.events.Load())
	}
}

// TestJournalStatsInMetrics checks the recorder's counters ride along
// in MetricsSnapshot.
func TestJournalStatsInMetrics(t *testing.T) {
	m := Open(Options{Shards: 1})
	defer m.Close()
	tx := m.Begin()
	if err := tx.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := m.MetricsSnapshot()
	if snap.Journal.Emitted < 3 { // begin, grant, commit
		t.Fatalf("journal emitted %d records, want >= 3", snap.Journal.Emitted)
	}
	if snap.Journal.Cap == 0 {
		t.Fatal("journal capacity missing from metrics snapshot")
	}
	// Wait-free writers: nothing in this test can tear.
	if snap.Journal.TornReads != 0 {
		t.Fatalf("torn reads = %d, want 0", snap.Journal.TornReads)
	}
}
