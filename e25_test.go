package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// e25Run drives the E25 churn-skewed workload on one manager: every
// shard pinned with perShard long-held resources (so each shard's copy
// has real weight), then rounds of short-transaction churn confined to
// shard 0, each round closed by one manual detector activation. It
// returns the summed copy-phase time across the measured activations,
// the shard copy/skip totals, and a decision transcript for A/B
// comparison.
func e25Run(t testing.TB, mode IncrementalMode, rounds int) (copyTotal time.Duration, copied, skipped int, decisions string) {
	const (
		shards   = 32
		perShard = 16
	)
	m := Open(Options{Shards: shards, Detector: DetectorSnapshot, IncrementalSnapshot: mode})
	defer m.Close()
	ctx := context.Background()

	pin := m.Begin()
	for i := 0; i < shards; i++ {
		for j := 0; j < perShard; j++ {
			if err := pin.Lock(ctx, shardResource(t, m, uint32(i), j), S); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Detect() // warm-up: both modes pay one full copy here, outside the measurement

	for round := 0; round < rounds; round++ {
		for i := 0; i < 4; i++ {
			r := shardResource(t, m, 0, 1000+round*4+i)
			tx := m.Begin()
			if err := tx.Lock(ctx, r, X); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx.Recycle()
		}
		st := m.Detect()
		decisions += fmt.Sprintf("%d/%d/%d;", st.CyclesSearched, st.Aborted, st.Repositioned)
		last, ok := m.LastActivation()
		if !ok {
			t.Fatal("no activation report after Detect")
		}
		copyTotal += last.Copy
		copied += st.ShardsCopied
		skipped += st.ShardsSkipped
	}
	return copyTotal, copied, skipped, decisions
}

// TestE25IncrementalAB is the EXPERIMENTS.md E25 harness: the same
// churn-skewed workload (one hot shard out of 32, the rest pinned but
// untouched) under full-copy and incremental snapshots in the same
// process. The incremental detector must reach identical decisions
// while copying at most 20% of its shard visits, and its summed
// copy-phase time must come in at least 3x below the full-copy run's.
// Run with -v for the measured numbers.
func TestE25IncrementalAB(t *testing.T) {
	const rounds = 40
	fullCopyNs, fullCopied, fullSkipped, fullDec := e25Run(t, IncrementalOff, rounds)
	incCopyNs, incCopied, incSkipped, incDec := e25Run(t, IncrementalOn, rounds)

	t.Logf("full:        copy=%v copied=%d skipped=%d", fullCopyNs, fullCopied, fullSkipped)
	t.Logf("incremental: copy=%v copied=%d skipped=%d", incCopyNs, incCopied, incSkipped)

	if fullDec != incDec {
		t.Fatalf("decisions diverge:\nfull:        %s\nincremental: %s", fullDec, incDec)
	}
	if fullSkipped != 0 {
		t.Fatalf("full-copy run skipped %d shards, want 0", fullSkipped)
	}
	total := incCopied + incSkipped
	if total == 0 {
		t.Fatal("incremental run reported no shard visits")
	}
	if frac := float64(incCopied) / float64(total); frac > 0.20 {
		t.Fatalf("incremental run copied %d of %d shard visits (%.0f%%), want <= 20%%", incCopied, total, 100*frac)
	}
	if incCopyNs <= 0 {
		t.Fatal("incremental run reported zero copy time")
	}
	if ratio := float64(fullCopyNs) / float64(incCopyNs); ratio < 3 {
		t.Fatalf("copy-time drop %.1fx (full %v vs incremental %v), want >= 3x", ratio, fullCopyNs, incCopyNs)
	}
}

// e25CostRun feeds the cost model a skewed diet: 31 pinned cold
// shards, hot-shard churn closed by idle activations, and one
// two-transaction deadlock per round (confined to the hot shard,
// resolved by a manual activation). The idle:deadlock activation mix
// is 8:1 — deadlock-resolving activations mutate the snapshot and so
// force a full recopy either way; the incremental win lives in the
// idle majority. Returns the model's final state (D̂ and the derived
// T*) and the victims' mean blocked time at abort.
func e25CostRun(t *testing.T, mode IncrementalMode, rounds int) (CostModelState, time.Duration) {
	t.Helper()
	const shards = 32
	m := Open(Options{
		Shards:              shards,
		Scheduling:          SchedulingCostModel,
		Period:              time.Second, // background ticker stays out of the way
		IncrementalSnapshot: mode,
	})
	defer m.Close()
	ctx := context.Background()

	pin := m.Begin()
	for i := 0; i < shards; i++ {
		for j := 0; j < 16; j++ {
			if err := pin.Lock(ctx, shardResource(t, m, uint32(i), j), S); err != nil {
				t.Fatal(err)
			}
		}
	}
	r1 := shardResource(t, m, 0, 2000)
	r2 := shardResource(t, m, 0, 2001)
	m.Detect() // warm-up full copy

	var victimNs int64
	victims := 0
	for round := 0; round < rounds; round++ {
		for k := 0; k < 8; k++ {
			r := shardResource(t, m, 0, 3000+(round*8+k))
			tx := m.Begin()
			if err := tx.Lock(ctx, r, X); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx.Recycle()
			if st := m.Detect(); st.Aborted != 0 {
				t.Fatalf("idle activation aborted someone: %+v", st)
			}
		}
		a, b := m.Begin(), m.Begin()
		if err := a.Lock(ctx, r1, X); err != nil {
			t.Fatal(err)
		}
		if err := b.Lock(ctx, r2, X); err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		spans := make(chan time.Duration, 2)
		cross := func(tx *Txn, r ResourceID) {
			start := time.Now()
			err := tx.Lock(ctx, r, X)
			if errors.Is(err, ErrAborted) {
				spans <- time.Since(start)
			}
			errs <- err
		}
		go cross(a, r2)
		waitBlocked(t, m, a.ID())
		go cross(b, r1)
		waitBlocked(t, m, b.ID())
		if st := m.Detect(); st.Aborted != 1 {
			t.Fatalf("round %d: activation = %+v, want one abort", round, st)
		}
		<-errs
		<-errs
		victimNs += int64(<-spans)
		victims++
		a.Abort()
		b.Abort()
		a.Recycle()
		b.Recycle()
	}
	if victims == 0 {
		t.Fatal("no victims recorded")
	}
	return m.CostModel(), time.Duration(victimNs / int64(victims))
}

// TestE25CostModelFeedthrough checks the scheduling chain: the
// incremental snapshot shrinks ActivationReport.Total, Total is the
// cost model's D̂ sample, so on a skewed workload the incremental
// manager's D̂ must land below the full-copy manager's, pulling its
// cost-minimizing period T* down with it (T* grows with sqrt(D̂)).
// Run with -v for D̂, T* and the mean victim blocked time.
func TestE25CostModelFeedthrough(t *testing.T) {
	const rounds = 25
	cmFull, victimFull := e25CostRun(t, IncrementalOff, rounds)
	cmInc, victimInc := e25CostRun(t, IncrementalOn, rounds)

	t.Logf("full:        D-hat=%v T*=%v mean-victim-blocked=%v", cmFull.DetectCost, cmFull.Period, victimFull)
	t.Logf("incremental: D-hat=%v T*=%v mean-victim-blocked=%v", cmInc.DetectCost, cmInc.Period, victimInc)

	if cmFull.Samples == 0 || cmInc.Samples == 0 {
		t.Fatalf("cost model saw no samples: full %d, incremental %d", cmFull.Samples, cmInc.Samples)
	}
	if cmInc.DetectCost >= cmFull.DetectCost {
		t.Fatalf("incremental D-hat %v not below full-copy D-hat %v on a skewed workload",
			cmInc.DetectCost, cmFull.DetectCost)
	}
}
