package hwtwbg

import (
	"time"

	"hwtwbg/internal/detect"
	"hwtwbg/journal"
)

// Deadlock postmortems: when the detector resolves a cycle, the manager
// snapshots the flight recorder's merged tail and reconstructs how the
// H/W-TWBG evolved into that cycle — which grants made each holder a
// holder, which blocks made each waiter a waiter, in journal order. The
// result is a per-victim report pairing every cycle edge (the ECR
// evidence the detector acted on) with the event sequence that formed
// it, retained in a ring and served as JSON at /postmortems on the
// debug handler.

// PostmortemEvent is one journal record rendered for a postmortem.
type PostmortemEvent struct {
	Time     time.Time `json:"time"`
	Txn      TxnID     `json:"txn"`
	Kind     string    `json:"kind"`
	Resource string    `json:"resource,omitempty"`
	Mode     string    `json:"mode,omitempty"`
	// WaitNs is the blocked time a grant record carries (grant events
	// only; zero for an immediate grant).
	WaitNs uint64 `json:"wait_ns,omitempty"`
	// Depth is the queue depth at enqueue (block events only).
	Depth uint64 `json:"depth,omitempty"`
	// Tag is the application op tag attached (op-tag events only).
	Tag uint64 `json:"op_tag,omitempty"`
}

// PostmortemEdge is one edge of the resolved cycle with the journal
// evidence of its formation.
type PostmortemEdge struct {
	From     TxnID  `json:"from"`
	To       TxnID  `json:"to"`
	Resource string `json:"resource"`
	// Mode is the W edge's blocked mode; "NL" marks an H (holder) edge.
	Mode string `json:"mode"`
	// Evidence lists the journal events that formed the edge — the
	// grants and blocks of its two endpoints on its resource, oldest
	// first. Empty when the relevant records have already been
	// overwritten in the ring.
	Evidence []PostmortemEvent `json:"evidence"`
}

// Postmortem is the report generated for one resolved deadlock.
type Postmortem struct {
	Time       time.Time `json:"time"`
	Activation int       `json:"activation"` // detector activation seq that resolved it
	// TDR2 reports how the cycle was resolved: a queue repositioning
	// (true, nobody aborted) or a victim abort.
	TDR2   bool  `json:"tdr2"`
	Victim TxnID `json:"victim"` // the aborted victim, or the TDR-2 junction
	// Resource is the repositioned queue (TDR-2 only).
	Resource string `json:"resource,omitempty"`
	// Cycle is the resolved cycle's edge list in cycle order, each edge
	// carrying the journal evidence of its formation.
	Cycle []PostmortemEdge `json:"cycle"`
	// Tail is the merged journal tail restricted to the cycle's
	// participants — the graph's evolution into the deadlock, oldest
	// first (bounded; oldest events may have been overwritten).
	Tail []PostmortemEvent `json:"tail"`
	// OpTags maps cycle participants to their application op tags
	// (Txn.SetTag / wire tag=), when the tag records survived in the
	// ring — the cross-process handle naming the operations that
	// deadlocked each other.
	OpTags map[TxnID]uint64 `json:"op_tags,omitempty"`
}

// postmortemTailCap bounds the participant-restricted tail kept per
// report.
const postmortemTailCap = 64

// pmEvent renders one journal record as a postmortem event.
func pmEvent(r *journal.Record) PostmortemEvent {
	ev := PostmortemEvent{
		Time:     r.Time(),
		Txn:      TxnID(r.Txn),
		Kind:     r.Kind.String(),
		Resource: r.Resource(),
	}
	if r.Mode != 0 {
		ev.Mode = r.ModeString()
	}
	switch r.Kind {
	case journal.KindGrant:
		ev.WaitNs = r.Arg
	case journal.KindBlock:
		ev.Depth = r.Arg
	case journal.KindOpTag:
		ev.Tag = r.Arg
	}
	return ev
}

// generatePostmortems snapshots the journal once and builds one report
// per resolution the activation acted on, appending them to the
// postmortem ring. Called by recordActivation outside all manager
// locks (the ring append relocks mu briefly).
func (m *Manager) generatePostmortems(rep ActivationReport, resolutions []detect.Resolution) {
	if m.jr == nil || len(resolutions) == 0 {
		return
	}
	acted := 0
	for i := range resolutions {
		if !resolutions[i].Salvaged {
			acted++
		}
	}
	if acted == 0 {
		return
	}
	snap := m.jr.Snapshot() // merged, time-ordered; taken once for all reports
	reports := make([]Postmortem, 0, acted)
	for i := range resolutions {
		res := &resolutions[i]
		if res.Salvaged {
			continue
		}
		reports = append(reports, buildPostmortem(rep, res, snap))
	}
	m.mu.Lock()
	for i := range reports {
		m.postmortems.add(reports[i])
	}
	m.mu.Unlock()
}

// buildPostmortem reconstructs one resolved cycle's formation from the
// journal snapshot.
func buildPostmortem(rep ActivationReport, res *detect.Resolution, snap []journal.Record) Postmortem {
	pm := Postmortem{
		Time:       rep.Time,
		Activation: rep.Seq,
		TDR2:       res.TDR2,
		Victim:     res.Victim,
		Resource:   string(res.Resource),
	}
	participants := make(map[int64]bool, len(res.Cycle))
	for _, e := range res.Cycle {
		participants[int64(e.From)] = true
		participants[int64(e.To)] = true
	}
	// Only events up to the resolving activation belong in the story;
	// records the detector itself wrote for this activation (and any
	// later traffic already racing in) are cut off.
	cutoff := rep.Time.UnixNano()
	for _, e := range res.Cycle {
		edge := PostmortemEdge{
			From:     e.From,
			To:       e.To,
			Resource: string(e.Resource),
			Mode:     e.Mode.String(),
		}
		rh := journal.Hash(string(e.Resource))
		for i := range snap {
			r := &snap[i]
			if r.TS > cutoff || r.RHash != rh {
				continue
			}
			if r.Txn != int64(e.From) && r.Txn != int64(e.To) {
				continue
			}
			switch r.Kind {
			case journal.KindGrant, journal.KindBlock, journal.KindRequest:
				edge.Evidence = append(edge.Evidence, pmEvent(r))
			}
		}
		pm.Cycle = append(pm.Cycle, edge)
	}
	for i := range snap {
		r := &snap[i]
		if r.TS > cutoff || !participants[r.Txn] {
			continue
		}
		switch r.Kind {
		case journal.KindBegin, journal.KindRequest, journal.KindBlock, journal.KindGrant, journal.KindAbort, journal.KindCommit:
			pm.Tail = append(pm.Tail, pmEvent(r))
		case journal.KindOpTag:
			if pm.OpTags == nil {
				pm.OpTags = make(map[TxnID]uint64)
			}
			pm.OpTags[TxnID(r.Txn)] = r.Arg
			pm.Tail = append(pm.Tail, pmEvent(r))
		}
	}
	if len(pm.Tail) > postmortemTailCap {
		pm.Tail = pm.Tail[len(pm.Tail)-postmortemTailCap:]
	}
	return pm
}

// Postmortems returns the most recent deadlock postmortems (up to
// Options.HistorySize, default 128), oldest first, and the total number
// ever generated. Empty when the journal is disabled.
func (m *Manager) Postmortems() (reports []Postmortem, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.postmortems.items(), m.postmortems.total
}
