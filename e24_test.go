package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// schedStress runs the E20/E21 contended workload (8 workers, two
// random hot X locks each, real deadlocks throughout) under the given
// scheduling policy and returns the manager's lifetime stats, the cost
// model's final state, and the victims' aggregate deadlock-persistence
// cost as the workload experienced it: total and worst time a
// transaction had been blocked when the detector aborted it.
func schedStress(t *testing.T, scheduling string) (Stats, CostModelState, time.Duration, time.Duration, int) {
	t.Helper()
	m := Open(Options{
		Shards:     8,
		Period:     5 * time.Millisecond,
		MaxPeriod:  40 * time.Millisecond,
		Scheduling: scheduling,
	})
	defer m.Close()
	const (
		workers = 8
		rounds  = 100
		hotKeys = 6
	)
	var totalVictimNs, worstVictimNs, victims int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			lock := func(tx *Txn, r ResourceID) error {
				start := time.Now()
				err := tx.Lock(ctx, r, X)
				if errors.Is(err, ErrAborted) {
					span := time.Since(start).Nanoseconds()
					atomic.AddInt64(&totalVictimNs, span)
					atomic.AddInt64(&victims, 1)
					for {
						cur := atomic.LoadInt64(&worstVictimNs)
						if span <= cur || atomic.CompareAndSwapInt64(&worstVictimNs, cur, span) {
							break
						}
					}
				}
				return err
			}
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				a := ResourceID(fmt.Sprintf("hot%d", rng.Intn(hotKeys)))
				b := ResourceID(fmt.Sprintf("hot%d", rng.Intn(hotKeys)))
				if err := lock(tx, a); err != nil {
					tx.Abort()
					continue
				}
				runtime.Gosched()
				if err := lock(tx, b); err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	return m.Stats(), m.CostModel(), time.Duration(totalVictimNs), time.Duration(worstVictimNs), int(victims)
}

// TestE24SchedulingComparison is the EXPERIMENTS.md E24 harness: the
// same deadlock-heavy workload under a fixed 5ms schedule, the
// halve/double adaptive heuristic, and the cost-model scheduler, with
// the victims' blocked-time as the deadlock-persistence cost each
// policy lets accrue. The cost model must not let victims wait longer
// on average than the fixed schedule does — under sustained deadlock
// pressure λ̂ stays high and the derived T* stays low, where the fixed
// schedule keeps paying the full period/2 expected persistence. Run
// with -v for the numbers E24 quotes.
func TestE24SchedulingComparison(t *testing.T) {
	type result struct {
		name  string
		st    Stats
		cm    CostModelState
		total time.Duration
		worst time.Duration
		n     int
	}
	var results []result
	for _, sched := range []string{SchedulingFixed, SchedulingAdaptive, SchedulingCostModel} {
		st, cm, total, worst, n := schedStress(t, sched)
		results = append(results, result{sched, st, cm, total, worst, n})
	}
	for _, r := range results {
		if r.st.Runs == 0 {
			t.Fatalf("%s: detector idle", r.name)
		}
		if r.n == 0 {
			t.Fatalf("%s: workload produced no deadlock victims", r.name)
		}
		mean := r.total / time.Duration(r.n)
		t.Logf("%-9s runs=%-4d aborted=%-4d victims=%-4d victim wait mean=%-12v worst=%-12v model: rate=%.1f/s D=%v P=%v T*=%v",
			r.name, r.st.Runs, r.st.Aborted, r.n, mean, r.worst,
			r.cm.RatePerSec, r.cm.DetectCost, r.cm.PersistCost, r.cm.Period)
	}
	fixed, costmodel := results[0], results[2]
	meanFixed := fixed.total / time.Duration(fixed.n)
	meanCM := costmodel.total / time.Duration(costmodel.n)
	// The gate is on the mean with headroom for scheduling noise on a
	// loaded host: the cost model must at least match the fixed
	// schedule (in quiet runs it clearly beats it; see E24).
	if meanCM > meanFixed*3/2 {
		t.Errorf("cost model let victims wait longer than fixed: %v vs %v mean", meanCM, meanFixed)
	}
	// Under sustained pressure the model's derived period must have
	// come down from the 40ms maximum.
	if costmodel.cm.Period >= 40*time.Millisecond {
		t.Errorf("cost model period pinned at max under deadlock pressure: %+v", costmodel.cm)
	}
	if costmodel.cm.VictimWaits == 0 || costmodel.cm.RatePerSec <= 0 {
		t.Errorf("cost model estimators idle: %+v", costmodel.cm)
	}
}
