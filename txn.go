package hwtwbg

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hwtwbg/journal"
)

// txnState is the owner-goroutine view of a transaction's lifecycle.
type txnState byte

const (
	live txnState = iota
	abortedState
	committedState
)

// maxInlineShards sizes the touched-shard set inlined into the Txn
// struct; a transaction spanning more shards spills into an overflow
// slice (itself reused across pooled incarnations).
const maxInlineShards = 4

// Txn is a handle to one transaction. A handle must be used from a
// single goroutine at a time (the usual transaction discipline);
// distinct transactions may run on distinct goroutines concurrently.
type Txn struct {
	id    TxnID
	m     *Manager
	state txnState
	begun bool // begin record journaled (lazily, at the first lock request)

	// tag is the application-defined operation tag (SetTag); 0 = none.
	tag uint64

	// The touched-shard set: shards where this txn holds or waits, in
	// first-use order. An inline array covers the common case, so
	// noting a shard allocates nothing until a transaction spans more
	// than maxInlineShards shards.
	ntouched   int
	touchedArr [maxInlineShards]*shard
	touchedOvf []*shard

	heldBuf []ResourceID // scratch returned by Held, reused across calls

	batch batchScratch // LockAll's sort and flush scratch, reused across batches

	fcr fcRequest // this transaction's flat-combining publication record

	// epoch counts pooled incarnations of this struct: Begin bumps it
	// when reviving a recycled Txn, so a stale handle that survived a
	// Recycle is distinguishable in a debugger (and unambiguously a
	// use-after-Recycle bug). pooled latches the hand-back so a double
	// Recycle can never put one struct into the pool twice.
	epoch  uint64
	pooled atomic.Bool
}

// txnPool recycles Txn structs between Recycle and Begin. The pool has
// no New: Begin allocates on a miss, so callers that never Recycle pay
// one small allocation per transaction and nothing else changes.
var txnPool sync.Pool

// Begin starts a new transaction. It is a single atomic counter
// increment plus a pool pop; no lock is taken and nothing is registered
// — the manager learns about the transaction when its first lock
// request lands in a shard.
func (m *Manager) Begin() *Txn {
	t, _ := txnPool.Get().(*Txn)
	if t == nil {
		t = &Txn{}
	} else {
		t.epoch++
		t.pooled.Store(false)
	}
	t.id = TxnID(m.nextID.Add(1))
	t.m = m
	t.state = live
	t.begun = false
	t.tag = 0
	return t
}

// SetTag attaches an application-defined operation tag to the
// transaction: a compact uint64 trace/op id (an order id, a request
// hash, a span id) that the flight recorder journals as an op-tag
// record, so postmortems, `hwtrace report` and near-miss output can
// group wait chains by the application operation that caused them —
// across the process boundary when the tag arrives over the wire
// (lockservice `tag=` on BEGIN/LOCK/LOCKALL). The tag is a uint64, not
// a string, so attaching one stays allocation-free (the journal's
// Ring.Emit keeps its allocs=0 budget; a string tag would have to be
// copied into the record). Setting the same tag again is a no-op; tag
// 0 clears without journaling. Owner goroutine only.
func (t *Txn) SetTag(tag uint64) {
	if t.tag == tag {
		return
	}
	t.tag = tag
	if t.m != nil && t.m.jr != nil && tag != 0 {
		rec := journal.Record{Txn: int64(t.id), Arg: tag, Kind: journal.KindOpTag}
		t.m.jr.Control().Emit(&rec)
	}
}

// Tag returns the operation tag attached with SetTag (0 when none).
func (t *Txn) Tag() uint64 { return t.tag }

// Recycle hands a finished transaction's struct back to the allocation
// pool. It is purely an allocation optimization for callers that own
// the handle's entire lifecycle (Do/DoWith, the lockservice session
// loop, kv's retry loop use it); everyone else can simply drop the
// handle. The caller must not touch t after Recycle — the next Begin
// may revive the struct for an unrelated transaction (a new
// incarnation epoch). Recycling a live transaction is a no-op, as is a
// second Recycle of the same incarnation.
func (t *Txn) Recycle() {
	if t == nil || t.state == live {
		return
	}
	if !t.pooled.CompareAndSwap(false, true) {
		return
	}
	t.m = nil
	t.clearTouched()
	txnPool.Put(t)
}

// journalBegin lazily emits this transaction's begin record when its
// first lock request reaches a shard. Deferring the record to first
// use keeps Begin a pair of cheap atomics and matches the manager's
// view of the world: a transaction that never requests a lock never
// existed as far as the lock table — or the flight recorder — is
// concerned.
//
// ts is the request's own start timestamp; the begin record is stamped
// one nanosecond earlier so a merged snapshot (sorted by timestamp,
// ties broken by ring index, with the control ring last) orders the
// begin strictly before the request's grant or block records. Reusing
// the caller's clock read keeps the record free.
func (t *Txn) journalBegin(ts int64) {
	if t.m.jr == nil || t.begun {
		return
	}
	t.begun = true
	rec := journal.Record{TS: ts - 1, Txn: int64(t.id), Kind: journal.KindBegin}
	t.m.jr.Control().Emit(&rec)
}

// journalLifecycle writes one lifecycle record (commit/abort) to the
// flight recorder's control ring. No-op when the journal is disabled;
// never takes a lock, never allocates, never blocks.
func (m *Manager) journalLifecycle(kind journal.Kind, id TxnID) {
	if m.jr == nil {
		return
	}
	m.journalKind(kind, id)
}

// journalKind emits one control-ring record of the given kind. The
// caller has already established m.jr != nil.
func (m *Manager) journalKind(kind journal.Kind, id TxnID) {
	rec := journal.Record{Txn: int64(id), Kind: kind}
	m.jr.Control().Emit(&rec)
}

// ID returns the transaction identifier.
func (t *Txn) ID() TxnID { return t.id }

// consumeCondemned reports whether an externally-initiated abort
// (deadlock victim, Close) is pending for this transaction, consuming
// the mark. Owner goroutine only.
func (t *Txn) consumeCondemned() bool {
	if _, ok := t.m.condemned.Load(t.id); ok {
		t.m.condemned.Delete(t.id)
		return true
	}
	return false
}

// noteShard remembers that this transaction has state in s.
func (t *Txn) noteShard(s *shard) {
	n := t.ntouched
	if n > maxInlineShards {
		n = maxInlineShards
	}
	for i := 0; i < n; i++ {
		if t.touchedArr[i] == s {
			return
		}
	}
	for _, x := range t.touchedOvf {
		if x == s {
			return
		}
	}
	if t.ntouched < maxInlineShards {
		t.touchedArr[t.ntouched] = s
	} else {
		t.touchedOvf = append(t.touchedOvf, s)
	}
	t.ntouched++
}

// touchedAt returns the i-th touched shard in first-use order.
func (t *Txn) touchedAt(i int) *shard {
	if i < maxInlineShards {
		return t.touchedArr[i]
	}
	return t.touchedOvf[i-maxInlineShards]
}

// clearTouched empties the touched-shard set, dropping shard pointers
// (so a pooled Txn pins nothing) but keeping the overflow capacity.
func (t *Txn) clearTouched() {
	for i := range t.touchedArr {
		t.touchedArr[i] = nil
	}
	for i := range t.touchedOvf {
		t.touchedOvf[i] = nil
	}
	t.touchedOvf = t.touchedOvf[:0]
	t.ntouched = 0
}

// Lock acquires mode on resource r, blocking until the request is
// granted. It returns ErrAborted when the transaction was sacrificed to
// break a deadlock, ctx.Err() when the context is cancelled mid-wait
// (cancellation aborts the whole transaction, since strict two-phase
// locking cannot retract a single queued request), and ErrDone if the
// transaction already finished.
//
// The allocation budget below is the BENCH_PR8 gate made static: the
// allocbudget analyzer counts every heap-allocation site reachable
// from here across the whole call tree, and exactly one is provable —
// the table's Resource first-touch literal. (The dynamic 6 allocs/op
// of BenchmarkManagerConflict stays benchsmoke's job; the static gate
// catches anyone adding a new site to the path.)
//
//hwlint:hotpath allocs=1
func (t *Txn) Lock(ctx context.Context, r ResourceID, mode Mode) error {
	s := t.m.shardFor(r)
	tr := t.m.opts.Tracer
	if tr != nil {
		tr.OnRequest(t.id, r, mode)
	}
	start := time.Now()
	t.journalBegin(start.UnixNano())
	met := s.met
	if !s.mu.TryLock() {
		// Contended: publish into the shard's flat-combining slots so
		// the current mutex holder applies the request on its own mutex
		// round, instead of this goroutine piling onto the mutex. The
		// liveness check happens before publication — only the owner may
		// consume a condemned mark, and only blocked transactions are
		// ever condemned (Close excepted; see waitGrant's re-check).
		if err := t.checkLive(); err != nil {
			return err
		}
		if handled, err := t.lockPublished(ctx, s, r, mode, start); handled {
			return err
		}
		s.mu.Lock() // every slot occupied: fall back to the plain mutex path
	}
	met.mutexAcquires.Inc()
	if err := t.checkLive(); err != nil {
		s.drainPending()
		s.mu.Unlock()
		return err
	}
	res, err := s.tb.RequestEx(t.id, r, mode)
	if err != nil {
		s.drainPending()
		s.mu.Unlock()
		return err
	}
	s.epoch.bump()
	t.noteShard(s)
	if res.Conversion {
		met.conversions.Inc()
	} else {
		met.fresh.Inc()
	}
	if res.Granted {
		met.grants.Inc()
		met.grantsByMode[mode].Inc()
		met.immediate.Inc()
		s.drainPending()
		s.mu.Unlock()
		met.grant.Observe(uint64(time.Since(start)))
		if s.jr != nil {
			// One record per immediate grant, timestamped at the request
			// (no extra clock read); a conversion grant is flagged rather
			// than journaled twice.
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindGrant, Mode: uint8(mode)}
			if res.Conversion {
				rec.Flags = journal.FlagConversion
			}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		if tr != nil {
			tr.OnGrant(t.id, r, mode, 0)
		}
		return nil
	}
	met.blocked.Inc()
	// Blocked: register a waiter channel and park in waitGrant. The
	// channel lives in the resource's shard, which is where every grant
	// that can unblock us originates. It is a pooled one-token signal: a
	// waker deposits a token and unregisters it, the waiter consumes the
	// token and re-registers if still blocked, and every exit path
	// unregisters under the shard mutex before recycling it (see
	// putWaiter for why that order makes reuse safe).
	ch := getWaiter()
	s.waiters[t.id] = ch
	s.drainPending()
	s.mu.Unlock()
	met.queueDepth.Observe(uint64(res.QueueDepth))
	if s.jr != nil {
		rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Arg: uint64(res.QueueDepth), Kind: journal.KindBlock, Mode: uint8(mode)}
		if res.Conversion {
			rec.Flags = journal.FlagConversion
		}
		rec.SetResource(string(r))
		s.jr.Emit(&rec)
	}
	if tr != nil {
		tr.OnBlock(t.id, r, mode, res.QueueDepth)
	}
	return t.waitGrant(ctx, s, ch, start, r, mode, false)
}

// lockPublished runs one contended request through the shard's
// flat-combining slots: publish the request record, then wait for a
// mutex holder's drain to apply it — self-serving by becoming the
// combiner whenever the mutex happens to be free. handled is false when
// every slot was occupied; the caller falls back to the plain mutex
// path. On handled requests the combiner has already updated the
// request counters and, for a blocked request, registered the waiter
// channel; this goroutine performs all deferred work (histogram
// observations, journal records, tracer hooks) after the hand-off,
// outside any shard mutex.
//
// The one budgeted site is the table's Resource first-touch literal,
// reached through the combiner's drain.
//
//hwlint:hotpath allocs=1
func (t *Txn) lockPublished(ctx context.Context, s *shard, r ResourceID, mode Mode, start time.Time) (handled bool, err error) {
	req := &t.fcr
	req.prepare(t.id, r, mode, getWaiter())
	published := false
	for i := range s.fc {
		if s.fc[i].CompareAndSwap(nil, req) {
			published = true
			break
		}
	}
	if !published {
		putWaiter(req.ch) // never registered: safe to recycle directly
		req.ch = nil
		return false, nil
	}
	// Wait for a combiner to apply the request; whenever the mutex is
	// free, take one round ourselves so a published request can never
	// be stranded behind an idle mutex.
	for req.done.Load() == 0 {
		if s.mu.TryLock() {
			s.met.mutexAcquires.Inc()
			s.drainPending()
			s.mu.Unlock()
			continue
		}
		runtime.Gosched()
	}
	tr := t.m.opts.Tracer
	met := s.met
	res := req.res
	if req.err != nil {
		putWaiter(req.ch) // a failed request registers nothing
		req.ch = nil
		return true, req.err
	}
	t.noteShard(s)
	if res.Granted {
		putWaiter(req.ch)
		req.ch = nil
		met.grant.Observe(uint64(time.Since(start)))
		if s.jr != nil {
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindGrant, Mode: uint8(mode)}
			if res.Conversion {
				rec.Flags = journal.FlagConversion
			}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		if tr != nil {
			tr.OnGrant(t.id, r, mode, 0)
		}
		return true, nil
	}
	met.queueDepth.Observe(uint64(res.QueueDepth))
	if s.jr != nil {
		rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Arg: uint64(res.QueueDepth), Kind: journal.KindBlock, Mode: uint8(mode)}
		if res.Conversion {
			rec.Flags = journal.FlagConversion
		}
		rec.SetResource(string(r))
		s.jr.Emit(&rec)
	}
	if tr != nil {
		tr.OnBlock(t.id, r, mode, res.QueueDepth)
	}
	ch := req.ch
	req.ch = nil
	return true, t.waitGrant(ctx, s, ch, start, r, mode, true)
}

// waitGrant parks the owner goroutine of a blocked request until the
// request is granted, the transaction is aborted or cancelled, or the
// manager closes. ch is the registered waiter channel — registered
// under the shard mutex by the round that blocked the request, whether
// this goroutine's own or a combiner's. recheck forces one immediate
// table re-check before the first channel wait: the flat-combining path
// enqueues on another goroutine's mutex round after this goroutine's
// liveness check, so a concurrent Close (the one event that can condemn
// a transaction that is not blocked) could otherwise slip between the
// check and the park. Paths that enqueue under their own mutex round
// (Lock, LockAll) pass recheck=false — their liveness check and the
// enqueue are atomic under the shard mutex.
func (t *Txn) waitGrant(ctx context.Context, s *shard, ch chan struct{}, start time.Time, r ResourceID, mode Mode, recheck bool) error {
	tr := t.m.opts.Tracer
	met := s.met
	for {
		if recheck {
			recheck = false
		} else {
			select {
			case <-ctx.Done():
				// Abort the whole transaction: a queued request cannot be
				// retracted in isolation under strict 2PL. abortTables
				// unregisters our waiter entry in s (a touched shard), but a
				// pending externally-initiated abort skips it, so unregister
				// explicitly before recycling the channel.
				if t.checkLive() == nil {
					t.abortTables()
					t.state = abortedState
				}
				s.mu.Lock()
				delete(s.waiters, t.id)
				s.drainPending()
				s.mu.Unlock()
				putWaiter(ch)
				met.waitAborts.Inc()
				t.m.journalLifecycle(journal.KindAbort, t.id)
				if tr != nil {
					tr.OnAbort(t.id)
				}
				return ctx.Err()
			case <-ch:
			}
		}
		s.mu.Lock()
		met.mutexAcquires.Inc()
		if err := t.checkLive(); err != nil {
			delete(s.waiters, t.id)
			s.drainPending()
			s.mu.Unlock()
			putWaiter(ch)
			met.waitAborts.Inc()
			if errors.Is(err, ErrAborted) {
				if !t.m.closed.Load() {
					// A deadlock victim: its wait span is the persistence-
					// cost sample for the scheduling cost model (Close also
					// condemns, but arrives with closed already set).
					t.m.cost.observeVictimWait(time.Since(start), t.m.CurrentPeriod())
				}
				t.m.journalLifecycle(journal.KindAbort, t.id)
				if tr != nil {
					tr.OnAbort(t.id)
				}
			}
			return err
		}
		if !s.tb.Blocked(t.id) {
			// Granted. The hand-off grant itself was counted (per mode)
			// by the granting shard; the waiter observes its latency.
			delete(s.waiters, t.id)
			s.drainPending()
			s.mu.Unlock()
			putWaiter(ch)
			wait := time.Since(start)
			met.wait.Observe(uint64(wait))
			met.grant.Observe(uint64(wait))
			if s.jr != nil {
				// The grant record carries its wait, so a blocked span can
				// be reconstructed from this record alone even after the
				// block record has been overwritten.
				rec := journal.Record{TS: start.UnixNano() + int64(wait), Txn: int64(t.id), Arg: uint64(wait), Kind: journal.KindGrant, Mode: uint8(mode)}
				rec.SetResource(string(r))
				s.jr.Emit(&rec)
			}
			if tr != nil {
				tr.OnGrant(t.id, r, mode, wait)
			}
			return nil
		}
		// Spurious wake, or a first-pass re-check that found us still
		// blocked: (re-)register and wait. Drain any token deposited
		// while the channel was out of the map first, so a registered
		// channel is always empty.
		select {
		case <-ch:
		default:
		}
		s.waiters[t.id] = ch
		s.drainPending()
		s.mu.Unlock()
	}
}

// TryLock attempts the request without blocking and reports whether the
// lock was granted. A request that would block is refused outright (it
// is never queued), so TryLock never deadlocks and never leaves the
// transaction waiting.
func (t *Txn) TryLock(r ResourceID, mode Mode) (bool, error) {
	s := t.m.shardFor(r)
	tr := t.m.opts.Tracer
	if tr != nil {
		tr.OnRequest(t.id, r, mode)
	}
	start := time.Now()
	t.journalBegin(start.UnixNano())
	met := s.met
	s.mu.Lock()
	met.mutexAcquires.Inc()
	if err := t.checkLive(); err != nil {
		s.drainPending()
		s.mu.Unlock()
		return false, err
	}
	if !s.tb.WouldGrant(t.id, r, mode) {
		met.tryRefused.Inc()
		s.drainPending()
		s.mu.Unlock()
		if s.jr != nil {
			// A refused probe is the one case that journals a bare request
			// record: nothing was granted and nothing enqueued.
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindRequest, Mode: uint8(mode), Flags: journal.FlagTry}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		return false, nil
	}
	res, err := s.tb.RequestEx(t.id, r, mode)
	if res.Granted {
		s.epoch.bump()
		t.noteShard(s)
		if res.Conversion {
			met.conversions.Inc()
		} else {
			met.fresh.Inc()
		}
		met.grants.Inc()
		met.grantsByMode[mode].Inc()
		met.immediate.Inc()
		s.drainPending()
		s.mu.Unlock()
		met.grant.Observe(uint64(time.Since(start)))
		if s.jr != nil {
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindGrant, Mode: uint8(mode), Flags: journal.FlagTry}
			if res.Conversion {
				rec.Flags |= journal.FlagConversion
			}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		if tr != nil {
			tr.OnGrant(t.id, r, mode, 0)
		}
		return true, err
	}
	s.drainPending()
	s.mu.Unlock()
	return res.Granted, err
}

// Held returns the resources this transaction currently holds locks on,
// grouped by shard in first-use order (acquisition order within each
// shard; with a single shard this is global acquisition order). The
// returned slice is scratch owned by the handle and is valid until the
// next Held call on it; callers that retain the ids must copy them.
func (t *Txn) Held() []ResourceID {
	t.heldBuf = t.heldBuf[:0]
	for i := 0; i < t.ntouched; i++ {
		s := t.touchedAt(i)
		s.mu.Lock()
		t.heldBuf = s.tb.AppendHeld(t.heldBuf, t.id)
		s.mu.Unlock()
	}
	return t.heldBuf
}

// Mode returns the granted mode this transaction holds on r (NL when
// none).
func (t *Txn) Mode(r ResourceID) Mode {
	s := t.m.shardFor(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tb.HeldMode(t.id, r)
}

// Commit releases every lock the transaction holds and finishes it.
// Transactions waiting on those locks are granted and woken. The
// shards are released one at a time — no global lock is taken; the
// detector never mistakes the intermediate states for a deadlock
// because a committing transaction is never blocked.
func (t *Txn) Commit() error {
	if err := t.checkLive(); err != nil {
		return err
	}
	for i := 0; i < t.ntouched; i++ {
		s := t.touchedAt(i)
		s.mu.Lock()
		s.met.mutexAcquires.Inc()
		grants, err := s.tb.Release(t.id)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.epoch.bump()
		s.wakeGrants(grants)
		s.drainPending()
		s.mu.Unlock()
	}
	// Close may have raced with the releases above; honor its verdict.
	if t.consumeCondemned() {
		t.state = abortedState
		t.m.journalLifecycle(journal.KindAbort, t.id)
		if tr := t.m.opts.Tracer; tr != nil {
			tr.OnAbort(t.id)
		}
		return ErrAborted
	}
	t.state = committedState
	t.clearTouched()
	t.m.journalLifecycle(journal.KindCommit, t.id)
	return nil
}

// Abort rolls the transaction back, releasing everything it holds or
// waits for. Aborting a finished transaction is a no-op.
func (t *Txn) Abort() {
	if t.checkLive() != nil {
		return
	}
	t.abortTables()
	t.state = abortedState
	t.m.journalLifecycle(journal.KindAbort, t.id)
	if tr := t.m.opts.Tracer; tr != nil {
		tr.OnAbort(t.id)
	}
}

// abortTables removes the transaction from every shard it touched,
// waking the requests its departure grants. Called by the owner
// goroutine; shard locks are taken one at a time, which is safe because
// the detector only aborts blocked transactions and this one is live in
// its owner's hands.
func (t *Txn) abortTables() {
	for i := 0; i < t.ntouched; i++ {
		s := t.touchedAt(i)
		s.mu.Lock()
		s.met.mutexAcquires.Inc()
		// Unregister our own waiter entry, if any; the channel itself is
		// recycled by the wait loop that owns it.
		delete(s.waiters, t.id)
		grants := s.tb.Abort(t.id)
		s.epoch.bump()
		s.wakeGrants(grants)
		s.drainPending()
		s.mu.Unlock()
	}
	t.clearTouched()
	// Consume any abort mark that raced in; we are aborted either way.
	t.m.condemned.Delete(t.id)
}

// Err returns the transaction's terminal error: nil while live,
// ErrAborted or ErrDone afterwards.
func (t *Txn) Err() error {
	return t.checkLive()
}

// checkLive reports the transaction's error state, consuming any
// pending externally-initiated abort (deadlock victim, Close). Owner
// goroutine only; takes no locks — the condemned check is a lock-free
// load on a map that is empty unless a deadlock was just broken.
func (t *Txn) checkLive() error {
	if t.state == live && t.consumeCondemned() {
		t.state = abortedState
	}
	switch t.state {
	case abortedState:
		return ErrAborted
	case committedState:
		return ErrDone
	}
	if t.m.closed.Load() {
		return ErrClosed
	}
	return nil
}
