package hwtwbg

import (
	"context"
	"errors"
	"time"

	"hwtwbg/journal"
)

// txnState is the owner-goroutine view of a transaction's lifecycle.
type txnState byte

const (
	live txnState = iota
	abortedState
	committedState
)

// Txn is a handle to one transaction. A handle must be used from a
// single goroutine at a time (the usual transaction discipline);
// distinct transactions may run on distinct goroutines concurrently.
type Txn struct {
	id      TxnID
	m       *Manager
	state   txnState
	begun   bool     // begin record journaled (lazily, at the first lock request)
	touched []*shard // shards where this txn holds or waits, in first-use order
}

// Begin starts a new transaction. It is a single atomic counter
// increment; no lock is taken and nothing is registered — the manager
// learns about the transaction when its first lock request lands in a
// shard.
func (m *Manager) Begin() *Txn {
	return &Txn{id: TxnID(m.nextID.Add(1)), m: m}
}

// journalBegin lazily emits this transaction's begin record when its
// first lock request reaches a shard. Deferring the record to first
// use keeps Begin itself a single atomic increment (and inlinable, so
// a non-escaping Txn stays on the caller's stack) and matches the
// manager's view of the world: a transaction that never requests a
// lock never existed as far as the lock table — or the flight
// recorder — is concerned.
//
// ts is the request's own start timestamp; the begin record is stamped
// one nanosecond earlier so a merged snapshot (sorted by timestamp,
// ties broken by ring index, with the control ring last) orders the
// begin strictly before the request's grant or block records. Reusing
// the caller's clock read keeps the record free.
func (t *Txn) journalBegin(ts int64) {
	if t.m.jr == nil || t.begun {
		return
	}
	t.begun = true
	rec := journal.Record{TS: ts - 1, Txn: int64(t.id), Kind: journal.KindBegin}
	t.m.jr.Control().Emit(&rec)
}

// journalLifecycle writes one lifecycle record (commit/abort) to the
// flight recorder's control ring. No-op when the journal is disabled;
// never takes a lock, never allocates, never blocks.
func (m *Manager) journalLifecycle(kind journal.Kind, id TxnID) {
	if m.jr == nil {
		return
	}
	m.journalKind(kind, id)
}

// journalKind emits one control-ring record of the given kind. The
// caller has already established m.jr != nil.
func (m *Manager) journalKind(kind journal.Kind, id TxnID) {
	rec := journal.Record{Txn: int64(id), Kind: kind}
	m.jr.Control().Emit(&rec)
}

// ID returns the transaction identifier.
func (t *Txn) ID() TxnID { return t.id }

// consumeCondemned reports whether an externally-initiated abort
// (deadlock victim, Close) is pending for this transaction, consuming
// the mark. Owner goroutine only.
func (t *Txn) consumeCondemned() bool {
	if _, ok := t.m.condemned.Load(t.id); ok {
		t.m.condemned.Delete(t.id)
		return true
	}
	return false
}

// noteShard remembers that this transaction has state in s.
func (t *Txn) noteShard(s *shard) {
	for _, x := range t.touched {
		if x == s {
			return
		}
	}
	t.touched = append(t.touched, s)
}

// Lock acquires mode on resource r, blocking until the request is
// granted. It returns ErrAborted when the transaction was sacrificed to
// break a deadlock, ctx.Err() when the context is cancelled mid-wait
// (cancellation aborts the whole transaction, since strict two-phase
// locking cannot retract a single queued request), and ErrDone if the
// transaction already finished.
func (t *Txn) Lock(ctx context.Context, r ResourceID, mode Mode) error {
	s := t.m.shardFor(r)
	tr := t.m.opts.Tracer
	if tr != nil {
		tr.OnRequest(t.id, r, mode)
	}
	start := time.Now()
	t.journalBegin(start.UnixNano())
	met := s.met
	s.mu.Lock()
	if err := t.checkLive(); err != nil {
		s.mu.Unlock()
		return err
	}
	res, err := s.tb.RequestEx(t.id, r, mode)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	t.noteShard(s)
	if res.Conversion {
		met.conversions.Inc()
	} else {
		met.fresh.Inc()
	}
	if res.Granted {
		met.grants.Inc()
		met.grantsByMode[mode].Inc()
		met.immediate.Inc()
		s.mu.Unlock()
		met.grant.Observe(uint64(time.Since(start)))
		if s.jr != nil {
			// One record per immediate grant, timestamped at the request
			// (no extra clock read); a conversion grant is flagged rather
			// than journaled twice.
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindGrant, Mode: uint8(mode)}
			if res.Conversion {
				rec.Flags = journal.FlagConversion
			}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		if tr != nil {
			tr.OnGrant(t.id, r, mode, 0)
		}
		return nil
	}
	met.blocked.Inc()
	// Blocked: wait for wake-ups and re-check our fate each time. The
	// waiter channel lives in the resource's shard, which is where every
	// grant that can unblock us originates. The channel is a pooled
	// one-token signal: a waker deposits a token and unregisters it, we
	// consume the token and re-register if still blocked, and every exit
	// path unregisters under the shard mutex before recycling it (see
	// putWaiter for why that order makes reuse safe).
	ch := getWaiter()
	s.waiters[t.id] = ch
	s.mu.Unlock()
	met.queueDepth.Observe(uint64(res.QueueDepth))
	if s.jr != nil {
		rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Arg: uint64(res.QueueDepth), Kind: journal.KindBlock, Mode: uint8(mode)}
		if res.Conversion {
			rec.Flags = journal.FlagConversion
		}
		rec.SetResource(string(r))
		s.jr.Emit(&rec)
	}
	if tr != nil {
		tr.OnBlock(t.id, r, mode, res.QueueDepth)
	}
	for {
		select {
		case <-ctx.Done():
			// Abort the whole transaction: a queued request cannot be
			// retracted in isolation under strict 2PL. abortTables
			// unregisters our waiter entry in s (a touched shard), but a
			// pending externally-initiated abort skips it, so unregister
			// explicitly before recycling the channel.
			if t.checkLive() == nil {
				t.abortTables()
				t.state = abortedState
			}
			s.mu.Lock()
			delete(s.waiters, t.id)
			s.mu.Unlock()
			putWaiter(ch)
			met.waitAborts.Inc()
			t.m.journalLifecycle(journal.KindAbort, t.id)
			if tr != nil {
				tr.OnAbort(t.id)
			}
			return ctx.Err()
		case <-ch:
		}
		s.mu.Lock()
		if err := t.checkLive(); err != nil {
			delete(s.waiters, t.id)
			s.mu.Unlock()
			putWaiter(ch)
			met.waitAborts.Inc()
			if errors.Is(err, ErrAborted) {
				t.m.journalLifecycle(journal.KindAbort, t.id)
				if tr != nil {
					tr.OnAbort(t.id)
				}
			}
			return err
		}
		if !s.tb.Blocked(t.id) {
			// Granted. The hand-off grant itself was counted (per mode)
			// by the granting shard; the waiter observes its latency.
			delete(s.waiters, t.id)
			s.mu.Unlock()
			putWaiter(ch)
			wait := time.Since(start)
			met.wait.Observe(uint64(wait))
			met.grant.Observe(uint64(wait))
			if s.jr != nil {
				// The grant record carries its wait, so a blocked span can
				// be reconstructed from this record alone even after the
				// block record has been overwritten.
				rec := journal.Record{TS: start.UnixNano() + int64(wait), Txn: int64(t.id), Arg: uint64(wait), Kind: journal.KindGrant, Mode: uint8(mode)}
				rec.SetResource(string(r))
				s.jr.Emit(&rec)
			}
			if tr != nil {
				tr.OnGrant(t.id, r, mode, wait)
			}
			return nil
		}
		// Spurious wake (some unrelated event); re-register and wait
		// again. The token was consumed above, so the channel is empty.
		s.waiters[t.id] = ch
		s.mu.Unlock()
	}
}

// TryLock attempts the request without blocking and reports whether the
// lock was granted. A request that would block is refused outright (it
// is never queued), so TryLock never deadlocks and never leaves the
// transaction waiting.
func (t *Txn) TryLock(r ResourceID, mode Mode) (bool, error) {
	s := t.m.shardFor(r)
	tr := t.m.opts.Tracer
	if tr != nil {
		tr.OnRequest(t.id, r, mode)
	}
	start := time.Now()
	t.journalBegin(start.UnixNano())
	met := s.met
	s.mu.Lock()
	if err := t.checkLive(); err != nil {
		s.mu.Unlock()
		return false, err
	}
	if !s.tb.WouldGrant(t.id, r, mode) {
		met.tryRefused.Inc()
		s.mu.Unlock()
		if s.jr != nil {
			// A refused probe is the one case that journals a bare request
			// record: nothing was granted and nothing enqueued.
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindRequest, Mode: uint8(mode), Flags: journal.FlagTry}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		return false, nil
	}
	res, err := s.tb.RequestEx(t.id, r, mode)
	if res.Granted {
		t.noteShard(s)
		if res.Conversion {
			met.conversions.Inc()
		} else {
			met.fresh.Inc()
		}
		met.grants.Inc()
		met.grantsByMode[mode].Inc()
		met.immediate.Inc()
		s.mu.Unlock()
		met.grant.Observe(uint64(time.Since(start)))
		if s.jr != nil {
			rec := journal.Record{TS: start.UnixNano(), Txn: int64(t.id), Kind: journal.KindGrant, Mode: uint8(mode), Flags: journal.FlagTry}
			if res.Conversion {
				rec.Flags |= journal.FlagConversion
			}
			rec.SetResource(string(r))
			s.jr.Emit(&rec)
		}
		if tr != nil {
			tr.OnGrant(t.id, r, mode, 0)
		}
		return true, err
	}
	s.mu.Unlock()
	return res.Granted, err
}

// Held returns the resources this transaction currently holds locks on,
// grouped by shard in first-use order (acquisition order within each
// shard; with a single shard this is global acquisition order).
func (t *Txn) Held() []ResourceID {
	var out []ResourceID
	for _, s := range t.touched {
		s.mu.Lock()
		out = append(out, s.tb.Held(t.id)...)
		s.mu.Unlock()
	}
	return out
}

// Mode returns the granted mode this transaction holds on r (NL when
// none).
func (t *Txn) Mode(r ResourceID) Mode {
	s := t.m.shardFor(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tb.HeldMode(t.id, r)
}

// Commit releases every lock the transaction holds and finishes it.
// Transactions waiting on those locks are granted and woken. The
// shards are released one at a time — no global lock is taken; the
// detector never mistakes the intermediate states for a deadlock
// because a committing transaction is never blocked.
func (t *Txn) Commit() error {
	if err := t.checkLive(); err != nil {
		return err
	}
	for _, s := range t.touched {
		s.mu.Lock()
		grants, err := s.tb.Release(t.id)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.wakeGrants(grants)
		s.mu.Unlock()
	}
	// Close may have raced with the releases above; honor its verdict.
	if t.consumeCondemned() {
		t.state = abortedState
		t.m.journalLifecycle(journal.KindAbort, t.id)
		if tr := t.m.opts.Tracer; tr != nil {
			tr.OnAbort(t.id)
		}
		return ErrAborted
	}
	t.state = committedState
	t.touched = nil
	t.m.journalLifecycle(journal.KindCommit, t.id)
	return nil
}

// Abort rolls the transaction back, releasing everything it holds or
// waits for. Aborting a finished transaction is a no-op.
func (t *Txn) Abort() {
	if t.checkLive() != nil {
		return
	}
	t.abortTables()
	t.state = abortedState
	t.m.journalLifecycle(journal.KindAbort, t.id)
	if tr := t.m.opts.Tracer; tr != nil {
		tr.OnAbort(t.id)
	}
}

// abortTables removes the transaction from every shard it touched,
// waking the requests its departure grants. Called by the owner
// goroutine; shard locks are taken one at a time, which is safe because
// the detector only aborts blocked transactions and this one is live in
// its owner's hands.
func (t *Txn) abortTables() {
	for _, s := range t.touched {
		s.mu.Lock()
		// Unregister our own waiter entry, if any; the channel itself is
		// recycled by the Lock loop that owns it.
		delete(s.waiters, t.id)
		grants := s.tb.Abort(t.id)
		s.wakeGrants(grants)
		s.mu.Unlock()
	}
	t.touched = nil
	// Consume any abort mark that raced in; we are aborted either way.
	t.m.condemned.Delete(t.id)
}

// Err returns the transaction's terminal error: nil while live,
// ErrAborted or ErrDone afterwards.
func (t *Txn) Err() error {
	return t.checkLive()
}

// checkLive reports the transaction's error state, consuming any
// pending externally-initiated abort (deadlock victim, Close). Owner
// goroutine only; takes no locks — the condemned check is a lock-free
// load on a map that is empty unless a deadlock was just broken.
func (t *Txn) checkLive() error {
	if t.state == live && t.consumeCondemned() {
		t.state = abortedState
	}
	switch t.state {
	case abortedState:
		return ErrAborted
	case committedState:
		return ErrDone
	}
	if t.m.closed.Load() {
		return ErrClosed
	}
	return nil
}
