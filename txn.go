package hwtwbg

import (
	"context"

	"hwtwbg/internal/lock"
)

// txnState is the owner-goroutine view of a transaction's lifecycle.
type txnState byte

const (
	live txnState = iota
	abortedState
	committedState
)

// Txn is a handle to one transaction. A handle must be used from a
// single goroutine at a time (the usual transaction discipline);
// distinct transactions may run on distinct goroutines concurrently.
type Txn struct {
	id    TxnID
	m     *Manager
	state txnState
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	return &Txn{id: id, m: m}
}

// ID returns the transaction identifier.
func (t *Txn) ID() TxnID { return t.id }

// Lock acquires mode on resource r, blocking until the request is
// granted. It returns ErrAborted when the transaction was sacrificed to
// break a deadlock, ctx.Err() when the context is cancelled mid-wait
// (cancellation aborts the whole transaction, since strict two-phase
// locking cannot retract a single queued request), and ErrDone if the
// transaction already finished.
func (t *Txn) Lock(ctx context.Context, r ResourceID, mode Mode) error {
	m := t.m
	m.mu.Lock()
	if err := t.checkLive(); err != nil {
		m.mu.Unlock()
		return err
	}
	granted, err := m.tb.Request(t.id, r, mode)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if granted {
		m.mu.Unlock()
		return nil
	}
	// Blocked: wait for wake-ups and re-check our fate each time.
	for {
		ch := m.waiters[t.id]
		if ch == nil {
			ch = make(chan struct{})
			m.waiters[t.id] = ch
		}
		m.mu.Unlock()
		select {
		case <-ctx.Done():
			// Abort the whole transaction: a queued request cannot be
			// retracted in isolation under strict 2PL.
			m.mu.Lock()
			if t.checkLive() == nil {
				grants := m.tb.Abort(t.id)
				t.state = abortedState
				m.wake(t.id)
				m.wakeGrants(grants)
			}
			m.mu.Unlock()
			return ctx.Err()
		case <-ch:
		}
		m.mu.Lock()
		if err := t.checkLive(); err != nil {
			m.mu.Unlock()
			return err
		}
		if !m.tb.Blocked(t.id) {
			// Granted.
			m.mu.Unlock()
			return nil
		}
		// Spurious wake (some unrelated event); wait again.
	}
}

// TryLock attempts the request without blocking and reports whether the
// lock was granted. A request that would block is refused outright (it
// is never queued), so TryLock never deadlocks and never leaves the
// transaction waiting.
func (t *Txn) TryLock(r ResourceID, mode Mode) (bool, error) {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkLive(); err != nil {
		return false, err
	}
	if !m.wouldGrant(t.id, r, mode) {
		return false, nil
	}
	return m.tb.Request(t.id, r, mode)
}

// wouldGrant predicts whether a request would be granted immediately.
// Called with mu held; mirrors the grant tests of the scheduling policy.
func (m *Manager) wouldGrant(id TxnID, r ResourceID, mode Mode) bool {
	res := m.tb.Resource(r)
	if res == nil {
		return true
	}
	if h, ok := res.Holder(id); ok {
		newMode := lock.Conv(h.Granted, mode)
		if newMode == h.Granted {
			return true
		}
		for _, o := range res.Holders() {
			if o.Txn != id && !lock.Comp(newMode, o.Granted) {
				return false
			}
		}
		return true
	}
	return len(res.Queue()) == 0 && lock.Comp(mode, res.TotalMode())
}

// Held returns the resources this transaction currently holds locks on,
// in acquisition order.
func (t *Txn) Held() []ResourceID {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.m.tb.Held(t.id)
}

// Mode returns the granted mode this transaction holds on r (NL when
// none).
func (t *Txn) Mode(r ResourceID) Mode {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.m.tb.HeldMode(t.id, r)
}

// Commit releases every lock the transaction holds and finishes it.
// Transactions waiting on those locks are granted and woken.
func (t *Txn) Commit() error {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkLive(); err != nil {
		return err
	}
	grants, err := m.tb.Release(t.id)
	if err != nil {
		return err
	}
	t.state = committedState
	m.wakeGrants(grants)
	return nil
}

// Abort rolls the transaction back, releasing everything it holds or
// waits for. Aborting a finished transaction is a no-op.
func (t *Txn) Abort() {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.checkLive() != nil {
		return
	}
	grants := m.tb.Abort(t.id)
	t.state = abortedState
	m.wake(t.id)
	m.wakeGrants(grants)
}

// Err returns the transaction's terminal error: nil while live,
// ErrAborted or ErrDone afterwards.
func (t *Txn) Err() error {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.checkLive()
}

// checkLive reports the transaction's error state, consuming any
// pending externally-initiated abort (deadlock victim, Close). Called
// with mu held.
func (t *Txn) checkLive() error {
	m := t.m
	if m.pendingAbort[t.id] {
		delete(m.pendingAbort, t.id)
		t.state = abortedState
	}
	switch t.state {
	case abortedState:
		return ErrAborted
	case committedState:
		return ErrDone
	}
	if m.closed {
		return ErrClosed
	}
	return nil
}
