package hwtwbg

import (
	"runtime"
	"sync"
	"time"

	"hwtwbg/internal/detect"
)

// The snapshot detector (DetectorSnapshot) is the manager's answer to
// the stop-the-world pause: instead of freezing every shard for the
// whole activation, it copies each shard's lock table into a reusable
// arena under only that shard's mutex — each held just long enough to
// copy — and runs the paper's Steps 1–3 over the merged snapshot with
// no shard locks held at all. Because the copies are taken at
// different instants the merged view can be torn, so the algorithm's
// output is treated as a set of *candidates*: each resolution carries
// its cycle's edge evidence, which is re-verified against the live
// shards (under only the shards that cycle touches) before the TDR-1
// abort or TDR-2 repositioning is applied. Candidates whose evidence
// no longer holds are dropped and counted as false cycles. See
// validate.go for why a cycle that verifies live is always a real
// deadlock.
//
// The copy-out is incremental by default (Options.IncrementalSnapshot):
// every mutating mutex round bumps its shard's epoch counter, and a
// shard whose epoch is unchanged since the detector's previous copy is
// not recopied — its sub-arena is reused in place — while the dirty
// shards are copied concurrently across a bounded worker pool. The
// epoch is loaded without the shard mutex, so a copy decision can be
// one round stale; that only widens the tearing the validate-then-act
// replay already absorbs (DESIGN.md §13 states the argument in full).

// snapCopy summarizes one activation's copy phase.
type snapCopy struct {
	acquire, copied, maxHold time.Duration
	dirty, skipped           int
}

// maxCopyWorkers bounds the copy worker pool, and minParallelCopy is
// the dirty-shard count below which spawning workers costs more than
// the copies.
const (
	maxCopyWorkers  = 8
	minParallelCopy = 4
)

// copyWorkers picks the worker-pool width for copying n dirty shards.
func copyWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > maxCopyWorkers {
		w = maxCopyWorkers
	}
	if w > n {
		w = n
	}
	if n < minParallelCopy || w < 2 {
		return 1
	}
	return w
}

// copySnapshot fills the snapshot for one activation: pick the dirty
// shards (all of them with incremental snapshots off), copy each under
// its own mutex — concurrently when there are enough — and merge.
// Caller holds detMu. Per-shard timing (acquire/hold split, max hold)
// is taken only when an ActivationReport consumer exists; otherwise the
// whole phase is two clock reads attributed to Copy.
func (m *Manager) copySnapshot() snapCopy {
	var cp snapCopy
	n := len(m.shards)
	// With incremental snapshots off every shard is treated as dirty —
	// same copy machinery, no skipping — which recopies each record in
	// place instead of tearing the arenas down (Reset) and rebuilding.
	m.snap.BeginRound(n)
	dirty := m.dirtyScratch[:0]
	for i, s := range m.shards {
		if m.incremental && m.snap.ShardClean(i, s.epoch.load()) {
			cp.skipped++
		} else {
			dirty = append(dirty, i)
		}
	}
	m.dirtyScratch = dirty
	cp.dirty = len(dirty)
	if len(dirty) == 0 {
		return cp
	}
	if workers := copyWorkers(len(dirty)); workers == 1 {
		cp.acquire, cp.copied, cp.maxHold = m.copyShards(dirty)
	} else {
		var tm [maxCopyWorkers]struct{ acquire, copied, maxHold time.Duration }
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*len(dirty)/workers, (w+1)*len(dirty)/workers
			wg.Add(1)
			go func(w int, part []int) {
				defer wg.Done()
				tm[w].acquire, tm[w].copied, tm[w].maxHold = m.copyShards(part)
			}(w, dirty[lo:hi])
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			cp.acquire += tm[w].acquire
			cp.copied += tm[w].copied
			if tm[w].maxHold > cp.maxHold {
				cp.maxHold = tm[w].maxHold
			}
		}
	}
	// Sorting and merging run with no shard locks held; their cost is
	// part of producing the snapshot, so it counts toward Copy.
	mstart := time.Now()
	for _, i := range dirty {
		m.snap.FinishShard(i)
	}
	m.snap.MergeShards(dirty)
	cp.copied += time.Since(mstart)
	return cp
}

// copyShards copies the listed shards into the snapshot, each under its
// own mutex, returning the phase timing. With per-shard sampling on,
// acquire/hold are split by chaining two clock reads per shard (one
// after Lock, one after Unlock — the previous shard's post-unlock read
// doubles as this shard's pre-lock instant); otherwise the whole loop
// is timed as one block attributed to the copy (hold unsampled).
func (m *Manager) copyShards(idx []int) (acquire, copied, maxHold time.Duration) {
	if !m.holdSample {
		t0 := time.Now()
		for _, i := range idx {
			s := m.shards[i]
			s.mu.Lock()
			m.snap.CopyShard(s.tb, i, s.epoch.load())
			s.mu.Unlock()
		}
		return 0, time.Since(t0), 0
	}
	prev := time.Now()
	for _, i := range idx {
		s := m.shards[i]
		s.mu.Lock()
		t1 := time.Now()
		m.snap.CopyShard(s.tb, i, s.epoch.load())
		s.mu.Unlock()
		t2 := time.Now()
		acquire += t1.Sub(prev)
		hold := t2.Sub(t1)
		copied += hold
		if hold > maxHold {
			maxHold = hold
		}
		prev = t2
	}
	return acquire, copied, maxHold
}

// detectSnapshot is one snapshot-mode activation. Caller holds detMu.
func (m *Manager) detectSnapshot() Stats {
	start := time.Now()
	cp := m.copySnapshot()
	if hook := m.testHookAfterCopy; hook != nil {
		hook()
	}
	pre := m.auditPreSnapshot()
	res := m.snapDet.Run()
	vstart := time.Now()
	out := m.applyResolutions(res.Resolutions)
	m.auditPostSnapshot(pre, res)
	now := time.Now()

	rep := ActivationReport{
		Time:           now,
		Acquire:        cp.acquire,
		Copy:           cp.copied,
		Build:          res.BuildTime,
		Search:         res.SearchTime,
		Resolve:        res.ResolveTime,
		Validate:       now.Sub(vstart),
		Total:          now.Sub(start),
		MaxShardHold:   cp.maxHold,
		Vertices:       res.Vertices,
		Edges:          res.Edges,
		EdgeVisits:     res.EdgeVisits,
		CyclesSearched: res.CyclesSearched,
		Aborted:        len(out.aborted),
		Repositioned:   len(out.repositioned),
		Salvaged:       len(out.salvaged),
		FalseCycles:    out.falseCycles,
		ShardsCopied:   cp.dirty,
		ShardsSkipped:  cp.skipped,
	}
	events := make([]Event, 0, len(out.aborted)+len(out.repositioned)+len(out.salvaged))
	for _, v := range out.aborted {
		events = append(events, Event{Time: now, Kind: EventVictim, Txn: v})
	}
	for _, rp := range out.repositioned {
		events = append(events, Event{Time: now, Kind: EventReposition, Txn: rp.Victim, Resource: rp.Resource})
	}
	for _, v := range out.salvaged {
		events = append(events, Event{Time: now, Kind: EventSalvage, Txn: v})
	}
	return m.recordActivation(rep, cp.maxHold, out.validations, out.aborted, events, out.applied)
}

// replayOutcome summarizes the live replay of one snapshot activation's
// resolutions.
type replayOutcome struct {
	aborted      []TxnID             // victims actually aborted, in application order
	repositioned []detect.Resolution // TDR-2 resolutions applied live
	salvaged     []TxnID             // victims that needed no action after all
	applied      []detect.Resolution // every resolution validated and acted on, with its cycle evidence
	falseCycles  int
	validations  int
}

// applyResolutions replays the snapshot detector's resolutions against
// the live shards, re-validating each one first. The replay reproduces
// the STW activation's order on an unchanged state, so the two
// detectors make identical decisions whenever the world happens to be
// quiescent:
//
//  1. discovery order — validate each cycle and apply TDR-2 queue
//     surgeries immediately (Step 2 repositions as it walks, and a
//     later cycle's evidence may assume an earlier repositioning);
//  2. reverse discovery order — abort the confirmed TDR-1 victims
//     (Step 3 processes its abortion list most recent first), skipping
//     any whose request a previous abort already granted (salvage);
//  3. discovery order — schedule each repositioned queue (Step 3's
//     change-list pass), waking the newly granted requests.
//
// Resolutions the snapshot's own Step 3 already salvaged need no live
// action (an earlier abort in the same activation unblocks the victim
// here exactly as it did in the snapshot).
func (m *Manager) applyResolutions(rs []detect.Resolution) replayOutcome {
	var out replayOutcome
	if len(rs) == 0 {
		return out
	}
	confirmed := make([]bool, len(rs))
	var idx []uint32
	for i := range rs {
		r := &rs[i]
		if r.Salvaged {
			out.salvaged = append(out.salvaged, r.Victim)
			continue
		}
		idx = m.cycleShards(idx, r.Cycle)
		m.lockShards(idx)
		out.validations++
		ok := m.cycleHolds(r.Cycle)
		if ok && r.TDR2 {
			ok = m.tdr2Holds(r)
			if ok {
				sh := m.shardFor(r.Resource)
				sh.tb.RepositionAVST(r.Resource, r.Victim)
				sh.epoch.bump()
			}
		}
		m.unlockShards(idx)
		if !ok {
			out.falseCycles++
			continue
		}
		if r.TDR2 {
			out.repositioned = append(out.repositioned, *r)
			out.applied = append(out.applied, *r)
		} else {
			confirmed[i] = true
		}
	}
	for i := len(rs) - 1; i >= 0; i-- {
		if !confirmed[i] {
			continue
		}
		if m.abortVictim(&rs[i]) {
			out.aborted = append(out.aborted, rs[i].Victim)
			out.applied = append(out.applied, rs[i])
		} else {
			out.salvaged = append(out.salvaged, rs[i].Victim)
		}
	}
	for i := range out.repositioned {
		rid := out.repositioned[i].Resource
		s := m.shardFor(rid)
		s.mu.Lock()
		s.wakeGrants(s.tb.ScheduleQueue(rid))
		s.epoch.bump()
		s.mu.Unlock()
	}
	return out
}

// waitResource returns the resource inducing the victim's incoming
// cycle edge — the resource the victim is blocked on, whose shard
// therefore also holds its waiter channel. Every cycle vertex has
// exactly one incoming cycle edge.
func waitResource(r *detect.Resolution) ResourceID {
	for _, e := range r.Cycle {
		if e.To == r.Victim {
			return e.Resource
		}
	}
	return ""
}

// abortVictim applies one confirmed TDR-1 resolution. Under the cycle's
// shard locks it checks the victim is still blocked (Step 3's salvage
// condition: an earlier abort in this same replay may have granted its
// request) and, if so, condemns it, removes it from the locked shards
// — which always include the one it is blocked in, so the cascaded
// grants and the victim's own wake-up happen atomically with the
// decision — and then sweeps the remaining shards one at a time for
// locks the victim holds elsewhere (the abortTables discipline: safe
// because an aborted transaction never blocks again, so the
// intermediate states cannot look like a deadlock). Reports whether the
// victim was actually aborted.
func (m *Manager) abortVictim(r *detect.Resolution) bool {
	victim := r.Victim
	ws := m.shardFor(waitResource(r))
	idx := m.cycleShards(nil, r.Cycle)
	m.lockShards(idx)
	if !ws.tb.Blocked(victim) {
		m.unlockShards(idx)
		return false
	}
	m.condemned.Store(victim, struct{}{})
	for _, i := range idx {
		s := m.shards[i]
		s.wakeGrants(s.tb.Abort(victim))
		s.epoch.bump()
	}
	ws.wake(victim)
	m.unlockShards(idx)
	for i, s := range m.shards {
		if containsIdx(idx, uint32(i)) {
			continue
		}
		s.mu.Lock()
		// Only an actual removal dirties the shard; most of this sweep
		// finds nothing of the victim.
		if s.tb.HeldCount(victim) > 0 || s.tb.Blocked(victim) {
			s.wakeGrants(s.tb.Abort(victim))
			s.epoch.bump()
		}
		s.mu.Unlock()
	}
	return true
}

// containsIdx reports whether the sorted index set holds i.
func containsIdx(idx []uint32, i uint32) bool {
	for _, v := range idx {
		if v == i {
			return true
		}
		if v > i {
			return false
		}
	}
	return false
}
