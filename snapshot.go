package hwtwbg

import (
	"time"

	"hwtwbg/internal/detect"
)

// The snapshot detector (DetectorSnapshot) is the manager's answer to
// the stop-the-world pause: instead of freezing every shard for the
// whole activation, it copies each shard's lock table into a reusable
// arena under only that shard's mutex — one shard at a time, each held
// just long enough to copy — and runs the paper's Steps 1–3 over the
// merged snapshot with no shard locks held at all. Because the copies
// are taken at different instants the merged view can be torn, so the
// algorithm's output is treated as a set of *candidates*: each
// resolution carries its cycle's edge evidence, which is re-verified
// against the live shards (under only the shards that cycle touches)
// before the TDR-1 abort or TDR-2 repositioning is applied. Candidates
// whose evidence no longer holds are dropped and counted as false
// cycles. See validate.go for why a cycle that verifies live is always
// a real deadlock.

// detectSnapshot is one snapshot-mode activation. Caller holds detMu.
func (m *Manager) detectSnapshot() Stats {
	start := time.Now()
	m.snap.Reset()
	var acquire, copied, maxHold time.Duration
	for _, s := range m.shards {
		t0 := time.Now()
		s.mu.Lock()
		t1 := time.Now()
		s.tb.CopyInto(m.snap)
		s.mu.Unlock()
		t2 := time.Now()
		acquire += t1.Sub(t0)
		hold := t2.Sub(t1)
		copied += hold
		if hold > maxHold {
			maxHold = hold
		}
	}
	if hook := m.testHookAfterCopy; hook != nil {
		hook()
	}
	pre := m.auditPreSnapshot()
	res := m.snapDet.Run()
	vstart := time.Now()
	out := m.applyResolutions(res.Resolutions)
	m.auditPostSnapshot(pre, res)
	now := time.Now()

	rep := ActivationReport{
		Time:           now,
		Acquire:        acquire,
		Copy:           copied,
		Build:          res.BuildTime,
		Search:         res.SearchTime,
		Resolve:        res.ResolveTime,
		Validate:       now.Sub(vstart),
		Total:          now.Sub(start),
		MaxShardHold:   maxHold,
		Vertices:       res.Vertices,
		Edges:          res.Edges,
		EdgeVisits:     res.EdgeVisits,
		CyclesSearched: res.CyclesSearched,
		Aborted:        len(out.aborted),
		Repositioned:   len(out.repositioned),
		Salvaged:       len(out.salvaged),
		FalseCycles:    out.falseCycles,
	}
	events := make([]Event, 0, len(out.aborted)+len(out.repositioned)+len(out.salvaged))
	for _, v := range out.aborted {
		events = append(events, Event{Time: now, Kind: EventVictim, Txn: v})
	}
	for _, rp := range out.repositioned {
		events = append(events, Event{Time: now, Kind: EventReposition, Txn: rp.Victim, Resource: rp.Resource})
	}
	for _, v := range out.salvaged {
		events = append(events, Event{Time: now, Kind: EventSalvage, Txn: v})
	}
	return m.recordActivation(rep, maxHold, out.validations, out.aborted, events, out.applied)
}

// replayOutcome summarizes the live replay of one snapshot activation's
// resolutions.
type replayOutcome struct {
	aborted      []TxnID             // victims actually aborted, in application order
	repositioned []detect.Resolution // TDR-2 resolutions applied live
	salvaged     []TxnID             // victims that needed no action after all
	applied      []detect.Resolution // every resolution validated and acted on, with its cycle evidence
	falseCycles  int
	validations  int
}

// applyResolutions replays the snapshot detector's resolutions against
// the live shards, re-validating each one first. The replay reproduces
// the STW activation's order on an unchanged state, so the two
// detectors make identical decisions whenever the world happens to be
// quiescent:
//
//  1. discovery order — validate each cycle and apply TDR-2 queue
//     surgeries immediately (Step 2 repositions as it walks, and a
//     later cycle's evidence may assume an earlier repositioning);
//  2. reverse discovery order — abort the confirmed TDR-1 victims
//     (Step 3 processes its abortion list most recent first), skipping
//     any whose request a previous abort already granted (salvage);
//  3. discovery order — schedule each repositioned queue (Step 3's
//     change-list pass), waking the newly granted requests.
//
// Resolutions the snapshot's own Step 3 already salvaged need no live
// action (an earlier abort in the same activation unblocks the victim
// here exactly as it did in the snapshot).
func (m *Manager) applyResolutions(rs []detect.Resolution) replayOutcome {
	var out replayOutcome
	if len(rs) == 0 {
		return out
	}
	confirmed := make([]bool, len(rs))
	var idx []uint32
	for i := range rs {
		r := &rs[i]
		if r.Salvaged {
			out.salvaged = append(out.salvaged, r.Victim)
			continue
		}
		idx = m.cycleShards(idx, r.Cycle)
		m.lockShards(idx)
		out.validations++
		ok := m.cycleHolds(r.Cycle)
		if ok && r.TDR2 {
			ok = m.tdr2Holds(r)
			if ok {
				m.shardFor(r.Resource).tb.RepositionAVST(r.Resource, r.Victim)
			}
		}
		m.unlockShards(idx)
		if !ok {
			out.falseCycles++
			continue
		}
		if r.TDR2 {
			out.repositioned = append(out.repositioned, *r)
			out.applied = append(out.applied, *r)
		} else {
			confirmed[i] = true
		}
	}
	for i := len(rs) - 1; i >= 0; i-- {
		if !confirmed[i] {
			continue
		}
		if m.abortVictim(&rs[i]) {
			out.aborted = append(out.aborted, rs[i].Victim)
			out.applied = append(out.applied, rs[i])
		} else {
			out.salvaged = append(out.salvaged, rs[i].Victim)
		}
	}
	for i := range out.repositioned {
		rid := out.repositioned[i].Resource
		s := m.shardFor(rid)
		s.mu.Lock()
		s.wakeGrants(s.tb.ScheduleQueue(rid))
		s.mu.Unlock()
	}
	return out
}

// waitResource returns the resource inducing the victim's incoming
// cycle edge — the resource the victim is blocked on, whose shard
// therefore also holds its waiter channel. Every cycle vertex has
// exactly one incoming cycle edge.
func waitResource(r *detect.Resolution) ResourceID {
	for _, e := range r.Cycle {
		if e.To == r.Victim {
			return e.Resource
		}
	}
	return ""
}

// abortVictim applies one confirmed TDR-1 resolution. Under the cycle's
// shard locks it checks the victim is still blocked (Step 3's salvage
// condition: an earlier abort in this same replay may have granted its
// request) and, if so, condemns it, removes it from the locked shards
// — which always include the one it is blocked in, so the cascaded
// grants and the victim's own wake-up happen atomically with the
// decision — and then sweeps the remaining shards one at a time for
// locks the victim holds elsewhere (the abortTables discipline: safe
// because an aborted transaction never blocks again, so the
// intermediate states cannot look like a deadlock). Reports whether the
// victim was actually aborted.
func (m *Manager) abortVictim(r *detect.Resolution) bool {
	victim := r.Victim
	ws := m.shardFor(waitResource(r))
	idx := m.cycleShards(nil, r.Cycle)
	m.lockShards(idx)
	if !ws.tb.Blocked(victim) {
		m.unlockShards(idx)
		return false
	}
	m.condemned.Store(victim, struct{}{})
	for _, i := range idx {
		s := m.shards[i]
		s.wakeGrants(s.tb.Abort(victim))
	}
	ws.wake(victim)
	m.unlockShards(idx)
	for i, s := range m.shards {
		if containsIdx(idx, uint32(i)) {
			continue
		}
		s.mu.Lock()
		s.wakeGrants(s.tb.Abort(victim))
		s.mu.Unlock()
	}
	return true
}

// containsIdx reports whether the sorted index set holds i.
func containsIdx(idx []uint32, i uint32) bool {
	for _, v := range idx {
		if v == i {
			return true
		}
		if v > i {
			return false
		}
	}
	return false
}
