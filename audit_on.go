//go:build invariants

package hwtwbg

// This file is the runtime invariant auditor's attachment to the
// manager, compiled only under the `invariants` build tag (and inert
// even then unless Options.Audit is set). Each detector activation is
// bracketed: the pre hook captures the activation's input state — the
// merged live tables under the stopped world for DetectorSTW, the
// snapshot arena for DetectorSnapshot — and the post hook re-derives
// the paper's properties from that capture plus the detector's reported
// resolutions (see internal/audit for what is checked and which
// theorem each check mechanizes). Audited activations are slower and
// report inflated Wake/Validate phase times; that is the price of a
// debug build.

import (
	"hwtwbg/internal/audit"
	"hwtwbg/internal/detect"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// auditState is the pre-activation evidence the post-checks verify
// against: the H/W-TWBG rebuilt independently by the ECR rules, and a
// private copy of the table state for the Definition-1 oracle.
type auditState struct {
	graph *twbg.Graph
	clone *table.Table
}

// auditPreSTW captures the pre-activation state. The world is stopped,
// so merging every shard into one table yields a consistent view.
func (m *Manager) auditPreSTW() *auditState {
	if !m.opts.Audit {
		return nil
	}
	snap := table.NewSnapshot()
	for _, s := range m.shards {
		s.tb.CopyInto(snap)
	}
	return &auditState{graph: twbg.Build(m.mt), clone: snap.Table()}
}

// auditPostSTW runs the checks with the world still stopped: the live
// tables must satisfy the queue invariants, every reported cycle must
// have been a genuine deadlock of the captured pre-state, and the live
// graph must now be cycle-free (Theorem 4.1).
func (m *Manager) auditPostSTW(pre *auditState, res detect.Result) {
	if pre == nil {
		return
	}
	vs := audit.CheckGraph(pre.graph)
	vs = append(vs, audit.CheckResolutions(pre.graph, pre.clone, res.Resolutions)...)
	vs = append(vs, audit.CheckTables(m.shardTables())...)
	vs = append(vs, audit.CheckAcyclic(m.mt)...)
	m.recordAudit("stw", vs)
}

// auditPreSnapshot captures the snapshot the algorithm is about to run
// over (after the copy-out and any test hook). The resolution checks
// judge the detector against its actual input — the possibly torn
// snapshot — not the live shards; live divergence is validate-then-
// act's concern, exercised separately.
func (m *Manager) auditPreSnapshot() *auditState {
	if !m.opts.Audit {
		return nil
	}
	tb := m.snap.Table()
	return &auditState{graph: twbg.Build(tb), clone: tb.Clone()}
}

// auditPostSnapshot runs after the live replay. The snapshot-side
// checks are lock-free: Run applied every resolution to the snapshot
// table itself, so it must be cycle-free now no matter what the live
// shards did meanwhile. The live tables' structural invariants need a
// consistent cross-shard view, so the auditor briefly stops the world —
// a stall the snapshot detector otherwise never causes, acceptable in
// an invariants build.
func (m *Manager) auditPostSnapshot(pre *auditState, res detect.Result) {
	if pre == nil {
		return
	}
	vs := audit.CheckGraph(pre.graph)
	vs = append(vs, audit.CheckResolutions(pre.graph, pre.clone, res.Resolutions)...)
	vs = append(vs, audit.CheckAcyclic(m.snap.Table())...)
	m.stopTheWorld()
	vs = append(vs, audit.CheckTables(m.shardTables())...)
	m.resumeTheWorld()
	m.recordAudit("snapshot", vs)
}

// shardTables collects the live shard tables; the caller must have the
// world stopped.
func (m *Manager) shardTables() []*table.Table {
	tbs := make([]*table.Table, len(m.shards))
	for i, s := range m.shards {
		tbs[i] = s.tb
	}
	return tbs
}

// recordAudit appends one activation's report to the bounded ring.
func (m *Manager) recordAudit(detector string, vs []audit.Violation) {
	m.mu.Lock()
	m.auditRuns++
	m.auditReports = append(m.auditReports, audit.Report{Seq: m.auditRuns, Detector: detector, Violations: vs})
	if len(m.auditReports) > auditReportCap {
		m.auditReports = m.auditReports[len(m.auditReports)-auditReportCap:]
	}
	m.mu.Unlock()
}
