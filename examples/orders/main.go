// Orders: an order-processing workload over the transactional kv store.
// Concurrent workers reserve stock for multi-item orders (read-modify-
// write on several inventory keys per transaction, in arbitrary key
// order — guaranteed deadlock fodder), while an auditor repeatedly scans
// the whole store and checks the books balance. The store's H/W-TWBG
// detector resolves the deadlocks; the invariant
// (reserved + remaining == initial stock, per item) must hold at every
// audit and at the end.
//
//	go run ./examples/orders
package main

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"hwtwbg/kv"
)

const (
	items        = 6
	initialStock = 500
	workers      = 6
	ordersEach   = 40
)

func stockKey(i int) string    { return fmt.Sprintf("stock/%d", i) }
func reservedKey(i int) string { return fmt.Sprintf("reserved/%d", i) }

func main() {
	store := kv.Open(kv.Options{DetectEvery: 2 * time.Millisecond, MaxRetries: 5000})
	defer store.Close()
	ctx := context.Background()

	// Seed inventory.
	if err := store.Update(ctx, func(tx *kv.Tx) error {
		for i := 0; i < items; i++ {
			if err := tx.Put(ctx, stockKey(i), strconv.Itoa(initialStock)); err != nil {
				return err
			}
			if err := tx.Put(ctx, reservedKey(i), "0"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		panic(err)
	}

	audit := func(tx *kv.Tx) error {
		for i := 0; i < items; i++ {
			s, _, err := tx.Get(ctx, stockKey(i))
			if err != nil {
				return err
			}
			r, _, err := tx.Get(ctx, reservedKey(i))
			if err != nil {
				return err
			}
			sn, _ := strconv.Atoi(s)
			rn, _ := strconv.Atoi(r)
			if sn+rn != initialStock {
				return fmt.Errorf("item %d: stock %d + reserved %d != %d", i, sn, rn, initialStock)
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	placed := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id + 1)))
			for o := 0; o < ordersEach; o++ {
				// An order reserves 1-3 units of 2-3 distinct items.
				n := 2 + rng.Intn(2)
				chosen := rng.Perm(items)[:n]
				if err := store.Update(ctx, func(tx *kv.Tx) error {
					for _, item := range chosen {
						qty := 1 + rng.Intn(3)
						s, _, err := tx.Get(ctx, stockKey(item))
						if err != nil {
							return err
						}
						// Simulate per-item work between the read and the
						// write so concurrent orders genuinely overlap.
						time.Sleep(200 * time.Microsecond)
						sn, _ := strconv.Atoi(s)
						if sn < qty {
							return nil // out of stock: empty commit
						}
						r, _, err := tx.Get(ctx, reservedKey(item))
						if err != nil {
							return err
						}
						rn, _ := strconv.Atoi(r)
						if err := tx.Put(ctx, stockKey(item), strconv.Itoa(sn-qty)); err != nil {
							return err
						}
						if err := tx.Put(ctx, reservedKey(item), strconv.Itoa(rn+qty)); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					panic(err)
				}
				placed[id]++
			}
		}(w)
	}

	// The auditor runs concurrently with the order traffic.
	auditErrs := make(chan error, 1)
	stopAudit := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopAudit:
				auditErrs <- nil
				return
			case <-time.After(5 * time.Millisecond):
				// Audit periodically, not in a hot loop: a full-store
				// audit takes S on the MGL root, which serializes
				// against every writer's IX.
			}
			if err := store.View(ctx, audit); err != nil {
				auditErrs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(stopAudit)
	if err := <-auditErrs; err != nil {
		fmt.Println("AUDIT FAILED:", err)
		return
	}
	if err := store.View(ctx, audit); err != nil {
		fmt.Println("FINAL AUDIT FAILED:", err)
		return
	}
	total := 0
	for _, p := range placed {
		total += p
	}
	st := store.Stats()
	fmt.Printf("placed %d orders across %d workers; every audit balanced\n", total, workers)
	fmt.Printf("detector: %d runs, %d cycles, %d aborts, %d TDR-2 repositionings, %d salvaged\n",
		st.Runs, st.CyclesSearched, st.Aborted, st.Repositioned, st.Salvaged)
}
