// Paperexamples replays the worked examples of the paper — Example 3.1
// (a blocked lock conversion), Example 4.1 with Figures 4.1/4.2 (the
// H/W-TWBG, its four cycles, and the TDR-2 resolution that aborts
// nobody), and Example 5.1 with Figure 5.2 (nested cycles, a victim
// salvaged at Step 3) — printing the very lock-table lines and graphs
// the paper prints.
//
//	go run ./examples/paperexamples
package main

import (
	"fmt"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) {
	if _, err := tb.Request(txn, rid, m); err != nil {
		panic(err)
	}
}

func main() {
	example31()
	example41()
	example51()
}

func example31() {
	fmt.Println("=== Example 3.1: a blocked lock conversion ===")
	tb := table.New()
	req(tb, 1, "R1", lock.IS)
	req(tb, 2, "R1", lock.IX)
	req(tb, 3, "R1", lock.S)
	req(tb, 4, "R1", lock.X)
	fmt.Println("before T1 re-requests S:")
	fmt.Print("  ", tb.Resource("R1").String(), "\n")
	req(tb, 1, "R1", lock.S) // Conv(IS,S)=S conflicts with T2's IX
	fmt.Println("after T1 re-requests S (conversion blocked; tm = Conv(IX,S) = SIX):")
	fmt.Print("  ", tb.Resource("R1").String(), "\n\n")
}

func example41Table() *table.Table {
	tb := table.New()
	req(tb, 1, "R1", lock.IX)
	req(tb, 2, "R1", lock.IS)
	req(tb, 3, "R1", lock.IX)
	req(tb, 4, "R1", lock.IS)
	req(tb, 7, "R2", lock.IS)
	req(tb, 2, "R1", lock.S)
	req(tb, 1, "R1", lock.S)
	req(tb, 5, "R1", lock.IX)
	req(tb, 6, "R1", lock.S)
	req(tb, 7, "R1", lock.IX)
	req(tb, 8, "R2", lock.X)
	req(tb, 9, "R2", lock.IX)
	req(tb, 3, "R2", lock.S)
	req(tb, 4, "R2", lock.X)
	return tb
}

func example41() {
	fmt.Println("=== Example 4.1 / Figures 4.1 and 4.2 ===")
	tb := example41Table()
	fmt.Println("the situation:")
	fmt.Print(indent(tb.String()))

	g := twbg.Build(tb)
	fmt.Println("H/W-TWBG (Figure 4.1):")
	for _, e := range g.Edges() {
		fmt.Println("  " + e.String())
	}
	fmt.Println("TRRPs:")
	for _, p := range g.TRRPs() {
		fmt.Printf("  %v in %s\n", p, string(p.Resource))
	}
	fmt.Printf("elementary cycles: %d\n", len(g.Cycles(0)))
	for _, c := range g.Cycles(0) {
		fmt.Print("  ")
		for i, v := range c {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}

	fmt.Println("periodic-detection-resolution (uniform costs), step by step:")
	res := detect.New(tb, detect.Config{
		Trace: func(e detect.TraceEvent) {
			switch e.Kind {
			case detect.TraceCycle, detect.TraceCandidate,
				detect.TraceVictimTDR1, detect.TraceVictimTDR2,
				detect.TraceAbort, detect.TraceSalvage:
				fmt.Println("    " + e.String())
			}
		},
	}).Run()
	fmt.Printf("  cycles searched c' = %d\n", res.CyclesSearched)
	for _, rp := range res.Repositioned {
		fmt.Printf("  TDR-2 at junction %v: %v\n", rp.Junction, rp)
	}
	fmt.Printf("  aborted: %v  granted: %v\n", res.Aborted, res.Granted)
	fmt.Println("the modified situation (Figure 4.2 is its H/W-TWBG — acyclic):")
	fmt.Print(indent(tb.String()))
	fmt.Printf("deadlocked now? %v\n\n", twbg.Deadlocked(tb))
}

func example51() {
	fmt.Println("=== Example 5.1 / Figure 5.2: a victim salvaged at Step 3 ===")
	tb := table.New()
	req(tb, 1, "R1", lock.S)
	req(tb, 2, "R2", lock.S)
	req(tb, 3, "R2", lock.S)
	req(tb, 2, "R1", lock.X)
	req(tb, 3, "R1", lock.S)
	req(tb, 1, "R2", lock.X)
	fmt.Println("the situation (cycles {T1,T2,T3} and {T1,T2}):")
	fmt.Print(indent(tb.String()))

	costs := detect.NewCostTable(1)
	costs.Set(1, 6)
	costs.Set(2, 4)
	costs.Set(3, 1)
	fmt.Println("costs: T1=6 T2=4 T3=1")
	res := detect.New(tb, detect.Config{Costs: costs}).Run()
	fmt.Printf("detection picked T3 then T2; Step 3 aborted %v and salvaged %v (granted %v)\n",
		res.Aborted, res.Salvaged, res.Granted)
	fmt.Println("final state:")
	fmt.Print(indent(tb.String()))
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "  " + s[start:] + "\n"
	}
	return out
}
