// Banking: a concurrent funds-transfer workload over the public API.
// Many goroutines move money between random accounts using strict 2PL
// (S to read both balances, upgraded to X to write), which produces both
// ordering deadlocks and conversion deadlocks; the background detector
// resolves them, victims retry, and the invariant (total money is
// conserved) holds at the end.
//
//	go run ./examples/banking
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hwtwbg"
)

const (
	accounts       = 8
	initialBalance = 1000
	workers        = 8
	transfersEach  = 50
	// holdTime widens the window between reading balances and upgrading
	// the locks, so concurrent transfers actually collide and deadlock.
	holdTime = 300 * time.Microsecond
)

type bank struct {
	mu      sync.Mutex
	balance [accounts]int
}

func (b *bank) read(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance[i]
}

func (b *bank) move(from, to, amount int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balance[from] -= amount
	b.balance[to] += amount
}

func (b *bank) total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	sum := 0
	for _, v := range b.balance {
		sum += v
	}
	return sum
}

func acct(i int) hwtwbg.ResourceID {
	return hwtwbg.ResourceID(fmt.Sprintf("acct/%02d", i))
}

func main() {
	lm := hwtwbg.Open(hwtwbg.Options{Period: 2 * time.Millisecond})
	defer lm.Close()

	var b bank
	for i := range b.balance {
		b.balance[i] = initialBalance
	}

	var retries, commits int64
	var statMu sync.Mutex

	transfer := func(rng *rand.Rand) {
		from := rng.Intn(accounts)
		to := rng.Intn(accounts)
		for to == from {
			to = rng.Intn(accounts)
		}
		amount := 1 + rng.Intn(50)
		for attempt := 1; ; attempt++ {
			t := lm.Begin()
			err := func() error {
				// Read both balances under S locks...
				if err := t.Lock(context.Background(), acct(from), hwtwbg.S); err != nil {
					return err
				}
				if err := t.Lock(context.Background(), acct(to), hwtwbg.S); err != nil {
					return err
				}
				if b.read(from) < amount {
					return nil // insufficient funds: empty transfer, still commits
				}
				time.Sleep(holdTime) // simulate work between read and write
				// ...then upgrade to X to write: lock conversions that
				// can deadlock against other upgraders.
				if err := t.Lock(context.Background(), acct(from), hwtwbg.X); err != nil {
					return err
				}
				if err := t.Lock(context.Background(), acct(to), hwtwbg.X); err != nil {
					return err
				}
				b.move(from, to, amount)
				return nil
			}()
			if errors.Is(err, hwtwbg.ErrAborted) {
				statMu.Lock()
				retries++
				statMu.Unlock()
				// Back off with jitter before retrying. Without this the
				// read-then-upgrade pattern can thrash: the retried
				// transaction re-takes its S locks immediately and
				// recreates the same conversion deadlock every period.
				backoff := time.Duration(rng.Intn(attempt*500)+100) * time.Microsecond
				time.Sleep(backoff)
				continue // the whole transfer retries
			}
			if err != nil {
				panic(err)
			}
			if err := t.Commit(); err != nil {
				panic(err)
			}
			statMu.Lock()
			commits++
			statMu.Unlock()
			return
		}
	}

	fmt.Printf("running %d workers x %d transfers over %d accounts...\n", workers, transfersEach, accounts)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfersEach; i++ {
				transfer(rng)
			}
		}(int64(w + 1))
	}
	wg.Wait()

	st := lm.Stats()
	fmt.Printf("committed %d transfers with %d deadlock retries\n", commits, retries)
	fmt.Printf("detector: %d runs, %d cycles, %d aborts, %d TDR-2 repositionings, %d salvaged\n",
		st.Runs, st.CyclesSearched, st.Aborted, st.Repositioned, st.Salvaged)
	if got, want := b.total(), accounts*initialBalance; got != want {
		fmt.Printf("INVARIANT VIOLATED: total = %d, want %d\n", got, want)
	} else {
		fmt.Printf("invariant holds: total balance = %d\n", got)
	}
}
