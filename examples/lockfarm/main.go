// Lockfarm: the network lock service end to end. It starts an
// in-process lockd server on a loopback port, then runs several worker
// processes' worth of TCP clients that contend for shared resources
// with crossing lock orders. The server's background H/W-TWBG detector
// breaks the resulting deadlocks; wounded clients see ABORTED and
// retry; everyone finishes and the server reports its statistics.
//
//	go run ./examples/lockfarm
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hwtwbg"
	"hwtwbg/lockservice"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := lockservice.Serve(ln, hwtwbg.Options{Period: 3 * time.Millisecond})
	defer srv.Close()
	fmt.Printf("lockd serving on %s\n", srv.Addr())

	const workers = 6
	const jobsEach = 25
	resources := []string{"printer", "scanner", "plotter", "tape"}

	var wg sync.WaitGroup
	var mu sync.Mutex
	retries := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := lockservice.Dial(srv.Addr().String())
			if err != nil {
				panic(err)
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id + 1)))
			for j := 0; j < jobsEach; j++ {
				// Each job locks two devices in a random order —
				// guaranteed deadlock fodder.
				a := resources[rng.Intn(len(resources))]
				b := resources[rng.Intn(len(resources))]
				for b == a {
					b = resources[rng.Intn(len(resources))]
				}
				for attempt := 1; ; attempt++ {
					if _, err := c.Begin(); err != nil {
						panic(err)
					}
					err := c.Lock(a, hwtwbg.X)
					if err == nil {
						time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
						err = c.Lock(b, hwtwbg.X)
					}
					if errors.Is(err, lockservice.ErrAborted) {
						mu.Lock()
						retries++
						mu.Unlock()
						time.Sleep(time.Duration(rng.Intn(attempt*1000)+200) * time.Microsecond)
						continue
					}
					if err != nil {
						panic(err)
					}
					if err := c.Commit(); err != nil {
						panic(err)
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()

	c, err := lockservice.Dial(srv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d jobs across %d workers with %d deadlock retries\n",
		workers*jobsEach, workers, retries)
	fmt.Printf("server detector: %d runs, %d cycles found, %d aborts, %d TDR-2 repositionings\n",
		st.Runs, st.CyclesSearched, st.Aborted, st.Repositioned)
}
