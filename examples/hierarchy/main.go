// Hierarchy: multiple granularity locking over a database -> table ->
// row tree, showing how intention locks let fine-grained and
// coarse-grained transactions coexist, how an SIX scan-and-update works,
// and how a deadlock arising purely through intention locks is resolved
// by the same H/W-TWBG detector ("integrates without changes into a
// system that supports a resource hierarchy", Section 2 of the paper).
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/mgl"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func main() {
	h := mgl.NewHierarchy()
	check(h.AddRoot("db"))
	for _, tbl := range []table.ResourceID{"orders", "users"} {
		check(h.Add(tbl, "db"))
		for i := 1; i <= 3; i++ {
			check(h.Add(table.ResourceID(fmt.Sprintf("%s/row%d", tbl, i)), tbl))
		}
	}

	tb := table.New()
	l := mgl.NewLocker(tb, h)

	fmt.Println("=== fine-grained concurrency through intention locks ===")
	mustLock(l, 1, "orders/row1", lock.X)
	mustLock(l, 2, "orders/row2", lock.S)
	fmt.Println("T1 writes orders/row1, T2 reads orders/row2 — no conflict:")
	fmt.Print(tb.String())

	fmt.Println("\n=== an SIX scan-and-update ===")
	mustLock(l, 3, "users", lock.S)
	mustLock(l, 3, "users", lock.IX) // S + IX = SIX on the table
	fmt.Printf("T3 holds %v on users (scan all rows, update some)\n", tb.HeldMode(3, "users"))
	if g, err := l.Lock(4, "users/row1", lock.X); err != nil {
		panic(err)
	} else if g {
		panic("T4 should have blocked")
	}
	rid, _, _ := tb.WaitingOn(4)
	fmt.Printf("T4's row write blocks at %s (IX vs SIX)\n", rid)

	fmt.Println("\n=== a deadlock through intention locks ===")
	tb2 := table.New()
	l2 := mgl.NewLocker(tb2, h)
	mustLock(l2, 1, "orders", lock.S) // T1 reads all of orders
	mustLock(l2, 2, "users", lock.S)  // T2 reads all of users
	blocked(l2, 1, "users/row1", lock.X)
	blocked(l2, 2, "orders/row1", lock.X)
	fmt.Println("T1: S(orders) then X(users/row1); T2: S(users) then X(orders/row1):")
	fmt.Print(tb2.String())
	fmt.Printf("deadlocked: %v\n", twbg.Deadlocked(tb2))

	res := detect.New(tb2, detect.Config{}).Run()
	fmt.Printf("detector aborted %v; deadlocked now: %v\n", res.Aborted, twbg.Deadlocked(tb2))
	for _, v := range res.Aborted {
		l2.Drop(v)
	}
	survivor := table.TxnID(3) - res.Aborted[0]
	if l2.Pending(survivor) {
		done, err := l2.Resume(survivor)
		check(err)
		fmt.Printf("survivor %v resumed its acquisition: complete=%v\n", survivor, done)
	} else {
		fmt.Printf("survivor %v already finished its acquisition\n", survivor)
	}
	fmt.Print(tb2.String())
}

func mustLock(l *mgl.Locker, txn table.TxnID, id table.ResourceID, m lock.Mode) {
	g, err := l.Lock(txn, id, m)
	check(err)
	if !g {
		panic(fmt.Sprintf("%v blocked unexpectedly on %s", txn, id))
	}
}

func blocked(l *mgl.Locker, txn table.TxnID, id table.ResourceID, m lock.Mode) {
	g, err := l.Lock(txn, id, m)
	check(err)
	if g {
		panic(fmt.Sprintf("%v was granted %s unexpectedly", txn, id))
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
