// Quickstart: two goroutines deadlock on a pair of resources; the
// background H/W-TWBG detector picks a victim, the victim retries, and
// both finish.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hwtwbg"
)

func main() {
	lm := hwtwbg.Open(hwtwbg.Options{
		Period:   5 * time.Millisecond,
		OnVictim: func(id hwtwbg.TxnID) { fmt.Printf("  detector: aborted %v to break a deadlock\n", id) },
	})
	defer lm.Close()

	// transfer locks `from` then `to` — opposite orders deadlock.
	transfer := func(name string, from, to hwtwbg.ResourceID) {
		for attempt := 1; ; attempt++ {
			t := lm.Begin()
			err := t.Lock(context.Background(), from, hwtwbg.X)
			if err == nil {
				time.Sleep(2 * time.Millisecond) // guarantee the lock orders cross
				err = t.Lock(context.Background(), to, hwtwbg.X)
			}
			if errors.Is(err, hwtwbg.ErrAborted) {
				fmt.Printf("  %s: chosen as deadlock victim on attempt %d; retrying\n", name, attempt)
				continue
			}
			if err != nil {
				fmt.Printf("  %s: %v\n", name, err)
				return
			}
			fmt.Printf("  %s: holds %v and %v, committing\n", name, from, to)
			if err := t.Commit(); err != nil {
				fmt.Printf("  %s: commit: %v\n", name, err)
			}
			return
		}
	}

	fmt.Println("starting two transfers with crossing lock orders...")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); transfer("alice->bob", "acct/alice", "acct/bob") }()
	go func() { defer wg.Done(); transfer("bob->alice", "acct/bob", "acct/alice") }()
	wg.Wait()

	st := lm.Stats()
	fmt.Printf("done. detector ran %d times, found %d cycle(s), aborted %d, repositioned %d.\n",
		st.Runs, st.CyclesSearched, st.Aborted, st.Repositioned)
}
