// Tests for the sharded facade: cross-shard deadlock detection and
// resolution (TDR-1 and TDR-2), equivalence of the sharded detector
// with the single-table one, shard-count plumbing, per-shard counters,
// and a -race stress test hammering the public API across shards.
package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// distinctShardResources returns n resource ids that all land in
// different shards of m, so a test can build a cycle that provably
// spans shards.
func distinctShardResources(t *testing.T, m *Manager, n int) []ResourceID {
	t.Helper()
	if m.NumShards() < n {
		t.Fatalf("need %d shards, manager has %d", n, m.NumShards())
	}
	var out []ResourceID
	used := make(map[uint32]bool)
	for i := 0; len(out) < n; i++ {
		r := ResourceID(fmt.Sprintf("res-%d", i))
		if idx := shardIndex(r, m.mask); !used[idx] {
			used[idx] = true
			out = append(out, r)
		}
		if i > 1<<16 {
			t.Fatal("could not find resources in distinct shards")
		}
	}
	return out
}

func TestShardOptionRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		m := Open(Options{Shards: tc.in})
		if got := m.NumShards(); got != tc.want {
			t.Errorf("Shards:%d -> NumShards %d, want %d", tc.in, got, tc.want)
		}
		m.Close()
	}
	m := Open(Options{}) // default: derived from GOMAXPROCS, at least 1
	if m.NumShards() < 1 {
		t.Fatalf("default NumShards = %d", m.NumShards())
	}
	m.Close()
}

// TestCrossShardDeadlockTDR1 builds the classic two-transaction cycle
// over resources that hash to different shards and checks that one
// periodic activation finds it and aborts a victim (TDR-1).
func TestCrossShardDeadlockTDR1(t *testing.T) {
	m := Open(Options{Shards: 8})
	defer m.Close()
	rs := distinctShardResources(t, m, 2)
	x, y := rs[0], rs[1]
	ctx := context.Background()

	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, x, X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, y, X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, y, X) }()
	waitBlocked(t, m, a.ID())
	go func() { errs <- b.Lock(ctx, x, X) }()
	waitBlocked(t, m, b.ID())

	if !m.Deadlocked() {
		t.Fatalf("expected cross-shard deadlock:\n%s", m.Snapshot())
	}
	st := m.Detect()
	if st.Aborted != 1 || st.Repositioned != 0 {
		t.Fatalf("activation = %+v, want one abort\n%s", st, m.Snapshot())
	}
	if st.STWLast <= 0 || st.STWLast != st.STWTotal || st.STWLast != st.STWMax {
		t.Fatalf("activation STW fields inconsistent: %+v", st)
	}
	if m.Deadlocked() {
		t.Fatalf("deadlock remains:\n%s", m.Snapshot())
	}
	e1, e2 := <-errs, <-errs
	aborted := 0
	if errors.Is(e1, ErrAborted) {
		aborted++
	}
	if errors.Is(e2, ErrAborted) {
		aborted++
	}
	if aborted != 1 {
		t.Fatalf("lock errors %v / %v, want exactly one ErrAborted", e1, e2)
	}
	for _, tx := range []*Txn{a, b} {
		if tx.Err() == nil {
			if err := tx.Commit(); err != nil {
				t.Fatalf("survivor commit: %v", err)
			}
		}
	}
}

// TestCrossShardDeadlockTDR2 reproduces the queue-repositioning
// scenario of TestManualDetectAndTDR2, but with the two resources
// placed in different shards: the junction's AV/ST surgery must land in
// the owning shard and nobody dies.
func TestCrossShardDeadlockTDR2(t *testing.T) {
	m := Open(Options{Shards: 8})
	defer m.Close()
	rs := distinctShardResources(t, m, 2)
	q, h := rs[0], rs[1]
	ctx := context.Background()

	// Holder T1(IS) on q; queue on q: T2(X), T3(S); T3 holds h, which
	// T1 wants — the cycle runs through two shards.
	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	if err := t1.Lock(ctx, q, IS); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(ctx, h, X); err != nil {
		t.Fatal(err)
	}
	lockErr := make(chan error, 3)
	go func() { lockErr <- t2.Lock(ctx, q, X) }()
	waitBlocked(t, m, t2.ID())
	go func() { lockErr <- t3.Lock(ctx, q, S) }()
	waitBlocked(t, m, t3.ID())
	go func() { lockErr <- t1.Lock(ctx, h, S) }()
	waitBlocked(t, m, t1.ID())

	if !m.Deadlocked() {
		t.Fatalf("expected deadlock:\n%s", m.Snapshot())
	}
	st := m.Detect()
	if st.Repositioned != 1 || st.Aborted != 0 {
		t.Fatalf("activation = %+v, want one repositioning and no aborts\n%s", st, m.Snapshot())
	}
	if m.Deadlocked() {
		t.Fatalf("deadlock remains:\n%s", m.Snapshot())
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("first unblocked lock: %v", err)
	}
	if t3.Mode(q) != S {
		t.Fatalf("t3 q mode = %v\n%s", t3.Mode(q), m.Snapshot())
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("t1's lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("t2's lock: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// runShardScenario drives one manager through a fixed deadlock
// tableau — a TDR-2 junction on q/h plus a plain two-cycle on x/y with
// asymmetric held counts (so the cost metric picks a unique victim) —
// runs one activation, and reports what the detector decided.
func runShardScenario(t *testing.T, shards int) (victims []TxnID, activation Stats, events []Event, snapshot string) {
	t.Helper()
	var mu sync.Mutex
	m := Open(Options{
		Shards:   shards,
		OnVictim: func(id TxnID) { mu.Lock(); victims = append(victims, id); mu.Unlock() },
	})
	defer m.Close()
	ctx := context.Background()

	// Same Begin order on every run: ids are assigned by a global
	// counter, so T1..T5 are identical across managers.
	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin() // TDR-2 cast
	t4, t5 := m.Begin(), m.Begin()                // TDR-1 cast

	// TDR-2 tableau (see TestCrossShardDeadlockTDR2). With 8 shards,
	// "q" and "h" land in shards 0 and 3 and "x"/"y" in 3 and 0, so
	// both cycles genuinely span shards.
	if err := t1.Lock(ctx, "q", IS); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(ctx, "h", X); err != nil {
		t.Fatal(err)
	}
	spawn := func(tx *Txn, r ResourceID, mode Mode) chan error {
		ch := make(chan error, 1)
		go func() { ch <- tx.Lock(ctx, r, mode) }()
		waitBlocked(t, m, tx.ID())
		return ch
	}
	c2 := spawn(t2, "q", X)
	c3 := spawn(t3, "q", S)
	c1 := spawn(t1, "h", S)

	// TDR-1 tableau: t4 holds two extra locks so cost(t4)=4 > cost(t5)=2
	// and the detector must always pick t5.
	if err := t4.Lock(ctx, "x", X); err != nil {
		t.Fatal(err)
	}
	if err := t4.Lock(ctx, "pad1", S); err != nil {
		t.Fatal(err)
	}
	if err := t4.Lock(ctx, "pad2", S); err != nil {
		t.Fatal(err)
	}
	if err := t5.Lock(ctx, "y", X); err != nil {
		t.Fatal(err)
	}
	c4 := spawn(t4, "y", X)
	c5 := spawn(t5, "x", X)

	activation = m.Detect()
	snapshot = m.Snapshot()
	events, _ = m.History()

	// Unwind: the reposition granted t3's S on q, the abort of t5 freed
	// y for t4; committing in dependency order drains the rest.
	if err := <-c3; err != nil {
		t.Fatalf("t3's repositioned lock: %v", err)
	}
	if err := <-c5; !errors.Is(err, ErrAborted) {
		t.Fatalf("t5's lock: %v, want ErrAborted", err)
	}
	if err := <-c4; err != nil {
		t.Fatalf("t4's lock: %v", err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-c1; err != nil {
		t.Fatalf("t1's lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-c2; err != nil {
		t.Fatalf("t2's lock: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return victims, activation, events, snapshot
}

// TestShardedMatchesSerialDetector is the acceptance criterion for
// paper fidelity: on the same logical state, a 1-shard manager and an
// 8-shard manager must make identical victim and TDR-2 choices and
// leave identical lock tables behind.
func TestShardedMatchesSerialDetector(t *testing.T) {
	v1, a1, e1, s1 := runShardScenario(t, 1)
	v8, a8, e8, s8 := runShardScenario(t, 8)

	if a1.Aborted != 1 || a1.Repositioned != 1 {
		t.Fatalf("serial activation = %+v, want 1 abort + 1 reposition", a1)
	}
	if a8.Aborted != a1.Aborted || a8.Repositioned != a1.Repositioned ||
		a8.Salvaged != a1.Salvaged || a8.CyclesSearched != a1.CyclesSearched {
		t.Fatalf("activations differ: serial %+v vs sharded %+v", a1, a8)
	}
	if len(v1) != 1 || len(v8) != 1 || v1[0] != v8[0] {
		t.Fatalf("victims differ: serial %v vs sharded %v", v1, v8)
	}
	if v1[0] != 5 {
		t.Fatalf("victim = T%d, want the cheaper T5", v1[0])
	}
	if len(e1) != len(e8) {
		t.Fatalf("history lengths differ: %d vs %d", len(e1), len(e8))
	}
	for i := range e1 {
		if e1[i].Kind != e8[i].Kind || e1[i].Txn != e8[i].Txn || e1[i].Resource != e8[i].Resource {
			t.Fatalf("history[%d] differs: serial %+v vs sharded %+v", i, e1[i], e8[i])
		}
	}
	if s1 != s8 {
		t.Fatalf("post-resolution snapshots differ:\nserial:\n%s\nsharded:\n%s", s1, s8)
	}
}

// TestShardStatsCountGrants checks the per-shard grant counters: every
// successful Lock is exactly one grant in exactly one shard.
func TestShardStatsCountGrants(t *testing.T) {
	m := Open(Options{Shards: 4})
	defer m.Close()
	ctx := context.Background()
	const txns, locks = 20, 5
	for i := 0; i < txns; i++ {
		tx := m.Begin()
		for j := 0; j < locks; j++ {
			if err := tx.Lock(ctx, ResourceID(fmt.Sprintf("g-%d-%d", i, j)), X); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	ss := m.ShardStats()
	if len(ss) != 4 {
		t.Fatalf("len(ShardStats) = %d", len(ss))
	}
	var total uint64
	spread := 0
	for _, s := range ss {
		total += s.Grants
		if s.Grants > 0 {
			spread++
		}
	}
	if total != txns*locks {
		t.Fatalf("total grants = %d, want %d", total, txns*locks)
	}
	if spread < 2 {
		t.Fatalf("all grants landed in %d shard(s); striping broken", spread)
	}
}

// TestBeginIDsUnique: Begin is a bare atomic increment; concurrent
// Begins must still hand out unique ids.
func TestBeginIDsUnique(t *testing.T) {
	m := Open(Options{Shards: 4})
	defer m.Close()
	const goroutines, per = 16, 200
	ids := make([]TxnID, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[g*per+i] = m.Begin().ID()
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[TxnID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate txn id %d", id)
		}
		seen[id] = true
	}
}

// TestCrossShardStress hammers Lock/TryLock/Commit/Abort across shards
// from many goroutines with a fast background detector, then Closes the
// manager under fire. Run with -race; the assertions are deliberately
// weak — the point is the interleaving, and that every transaction
// terminates.
func TestCrossShardStress(t *testing.T) {
	m := Open(Options{Period: 500 * time.Microsecond, Shards: 8})
	const workers = 12
	deadline := time.Now().Add(100 * time.Millisecond)
	var commits, aborts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ctx := context.Background()
			for time.Now().Before(deadline) {
				tx := m.Begin()
				alive := true
				for i, n := 0, 1+rng.Intn(4); i < n && alive; i++ {
					r := ResourceID(fmt.Sprintf("k%d", rng.Intn(24)))
					mode := X
					if rng.Intn(2) == 0 {
						mode = S
					}
					if rng.Intn(8) == 0 {
						if _, err := tx.TryLock(r, mode); err != nil {
							alive = false
						}
						continue
					}
					if err := tx.Lock(ctx, r, mode); err != nil {
						alive = false // victim, cancelled, or manager closed
					}
				}
				if alive && rng.Intn(10) == 0 {
					tx.Abort()
					aborts.Add(1)
					continue
				}
				if alive {
					if err := tx.Commit(); err == nil {
						commits.Add(1)
					}
				}
			}
		}(w)
	}
	// Diagnostics hammer alongside the workers: manual activations and
	// stop-the-world snapshots must interleave safely with everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			m.Detect()
			_ = m.Snapshot()
			_ = m.Deadlocked()
			_ = m.Edges()
			_ = m.ShardStats()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	if commits.Load() == 0 {
		t.Fatal("no transaction ever committed under stress")
	}
	// Everyone is done; the table must be empty (strict 2PL: every
	// terminated transaction released everything).
	if snap := m.Snapshot(); snap != "" {
		t.Fatalf("residual lock state after stress:\n%s", snap)
	}
	st := m.Stats()
	if st.Runs == 0 || st.STWTotal <= 0 {
		t.Fatalf("detector never ran? stats = %+v", st)
	}
	m.Close()
	// After Close everything errors cleanly.
	tx := m.Begin()
	if err := tx.Lock(context.Background(), "post", X); !errors.Is(err, ErrClosed) {
		t.Fatalf("lock after close: %v", err)
	}
}

// TestCloseUnderFire closes the manager while workers are mid-flight
// and checks every blocked Lock returns promptly with a terminal error.
func TestCloseUnderFire(t *testing.T) {
	m := Open(Options{Shards: 8})
	ctx := context.Background()
	holder := m.Begin()
	if err := holder.Lock(ctx, "gate", X); err != nil {
		t.Fatal(err)
	}
	const blocked = 8
	errs := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		tx := m.Begin()
		go func() { errs <- tx.Lock(ctx, "gate", S) }()
		waitBlocked(t, m, tx.ID())
	}
	m.Close()
	for i := 0; i < blocked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrClosed) {
				t.Fatalf("blocked lock returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked Lock did not return after Close")
		}
	}
}
