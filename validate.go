package hwtwbg

import (
	"sort"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Validation: the snapshot detector finds cycles in a view assembled
// from per-shard copies taken at different instants, so a "cycle" may
// be an artifact of the skew — half of it observed before a commit,
// half after. Before acting on a resolution, the manager re-verifies
// the cycle's edge evidence against the live shard tables while holding
// the mutex of every shard that owns a cycle resource. If every edge
// still holds at that one instant, each cycle member is blocked behind
// its successor right now, i.e. the cycle is a genuine deadlock and can
// only be broken by an external abort — so acting on it never aborts a
// transaction spuriously. A cycle that fails is dropped and counted
// (Stats.FalseCycles); if it was real but merely drifted, the next
// activation finds it again.

// cycleShards returns the sorted, deduplicated shard indices owning the
// cycle's inducing resources, reusing buf. Sorted order is what makes
// lockShards deadlock-free against stopTheWorld and other cycle sets.
func (m *Manager) cycleShards(buf []uint32, cycle []detect.CycleEdge) []uint32 {
	buf = buf[:0]
	for _, e := range cycle {
		buf = append(buf, shardIndex(e.Resource, m.mask))
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	out := buf[:0]
	for i, v := range buf {
		if i == 0 || v != buf[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// cycleHolds re-verifies a snapshot-detected cycle edge by edge against
// the live tables. The caller holds the mutex of every shard owning a
// cycle resource (lockShards over cycleShards), so the edges are
// checked against a single consistent instant.
func (m *Manager) cycleHolds(cycle []detect.CycleEdge) bool {
	for _, e := range cycle {
		r := m.shardFor(e.Resource).tb.Resource(e.Resource)
		if r == nil || !edgeHolds(r, e) {
			return false
		}
	}
	return true
}

// edgeHolds re-checks one edge's evidence on the live resource. A W
// edge asserts From still sits immediately before To in the queue,
// blocked in the recorded mode; an H edge asserts the ECR-1 or ECR-2
// conflict that induced it still holds (the same rules Step 1 wires
// edges by). The check errs on the strict side: any drift fails the
// edge and the whole cycle is dropped.
func edgeHolds(r *table.Resource, e detect.CycleEdge) bool {
	if e.W() {
		qn := r.QueueLen()
		for i := 0; i+1 < qn; i++ {
			if q := r.QueueAt(i); q.Txn == e.From {
				return q.Blocked == e.Mode && r.QueueAt(i+1).Txn == e.To
			}
		}
		return false
	}
	// H edge: From must still hold (or hold-and-convert on) the resource.
	hn := r.NumHolders()
	from := -1
	for i := 0; i < hn; i++ {
		if r.HolderAt(i).Txn == e.From {
			from = i
			break
		}
	}
	if from < 0 {
		return false
	}
	hf := r.HolderAt(from)
	// ECR-1: To is a fellow holder in conflict. The rule is ordered —
	// which of the pair's conflicts induces From -> To depends on their
	// holder-list positions, exactly as Step 1 wired it.
	for i := 0; i < hn; i++ {
		if r.HolderAt(i).Txn != e.To {
			continue
		}
		ht := r.HolderAt(i)
		if from < i {
			return !lock.Comp(hf.Granted, ht.Blocked) || !lock.Comp(hf.Blocked, ht.Blocked)
		}
		return !lock.Comp(ht.Blocked, hf.Granted)
	}
	// ECR-2: To must be the FIRST queue member in conflict with From
	// (Step 1 stops at the first, so a match further back is a different
	// edge, not this one).
	qn := r.QueueLen()
	for j := 0; j < qn; j++ {
		w := r.QueueAt(j)
		if !lock.Comp(w.Blocked, hf.Granted) || !lock.Comp(w.Blocked, hf.Blocked) {
			return w.Txn == e.To
		}
	}
	return false
}

// tdr2Holds re-checks the TDR-2 applicability condition live: the
// junction is still queued on the recorded resource and its blocked
// mode is compatible with the live total mode (Definition 4.1's AV/ST
// split is only defined under that condition). Caller holds the owning
// shard's mutex.
func (m *Manager) tdr2Holds(r *detect.Resolution) bool {
	tb := m.shardFor(r.Resource).tb
	rid, bm, ok := tb.WaitingOn(r.Victim)
	if !ok || rid != r.Resource {
		return false
	}
	res := tb.Resource(r.Resource)
	return res != nil && lock.Comp(bm, res.TotalMode())
}
