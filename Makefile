GO ?= go

.PHONY: all build vet test race bench benchsmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full bench sweep with allocation stats; the text output is archived
# alongside a JSON rendering (cmd/benchjson) for diffing across PRs.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms -benchmem ./... | tee BENCH_PR2.txt | $(GO) run ./cmd/benchjson > BENCH_PR2.json

# Quick harness check used by CI: a couple of iterations of the public
# API benchmarks, piped through benchjson to keep the converter honest.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkManagerUncontended|BenchmarkMetricsSnapshot' -benchtime 10x -benchmem . | $(GO) run ./cmd/benchjson

# The gate CI runs: everything must pass, including the race detector
# over the cross-shard stress tests.
ci: build vet test race
