GO ?= go

# Bench runs are archived as BENCH_<tag>.{txt,json}; bump BENCH_OUT each
# PR and compare against the predecessor with bench-compare.
BENCH_OUT  ?= BENCH_PR3
BENCH_PREV ?= BENCH_PR2

.PHONY: all build vet test race bench bench-compare benchsmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full bench sweep with allocation stats; the text output is archived
# alongside a JSON rendering (cmd/benchjson) for diffing across PRs.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms -benchmem ./... | tee $(BENCH_OUT).txt | $(GO) run ./cmd/benchjson > $(BENCH_OUT).json

# Diff this PR's bench run against the previous one; fails when any
# benchmark's ns/op regressed by more than the threshold.
bench-compare:
	$(GO) run ./cmd/benchjson compare -threshold 30 $(BENCH_PREV).json $(BENCH_OUT).json

# Quick harness check used by CI: a couple of iterations of the public
# API benchmarks, piped through benchjson to keep the converter honest.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkManagerUncontended|BenchmarkMetricsSnapshot' -benchtime 10x -benchmem . | $(GO) run ./cmd/benchjson

# The gate CI runs: everything must pass, including the race detector
# over the cross-shard stress tests.
ci: build vet test race
