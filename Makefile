GO ?= go

# Bench runs are archived as BENCH_<tag>.{txt,json}; bump BENCH_OUT each
# PR and compare against the predecessor with bench-compare.
BENCH_OUT  ?= BENCH_PR8
BENCH_PREV ?= BENCH_PR6

.PHONY: all build vet test race lint audit bench bench-compare benchsmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet plus the project's own analyzers (cmd/hwlint:
# shard lock ordering, callbacks under shard mutexes, nondeterministic
# map-iteration output, direct metric-field access). Zero findings
# required; deliberate exceptions carry //hwlint:allow annotations.
lint: vet
	$(GO) run ./cmd/hwlint ./...

# Runtime invariant audit: the whole test suite with the invariants
# build tag, which arms the paper-property auditor (internal/audit) on
# every Audit-enabled manager — each detector activation is re-verified
# against Theorem 1/3.1/4.1 and Lemma 4.1 from scratch.
audit:
	$(GO) test -tags=invariants ./...

# Full bench sweep with allocation stats; the text output is archived
# alongside a JSON rendering (cmd/benchjson) for diffing across PRs.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms -benchmem ./... | tee $(BENCH_OUT).txt | $(GO) run ./cmd/benchjson > $(BENCH_OUT).json

# Diff this PR's bench run against the previous one. The gate is
# allocs-only: E22 showed cross-run ns/op on this host is environment-
# dominated, so only allocs/op growth fails; ns/op deltas are printed
# informationally.
bench-compare:
	$(GO) run ./cmd/benchjson compare -allocs-only $(BENCH_PREV).json $(BENCH_OUT).json

# Quick harness check used by CI: the public-API benchmarks (uncontended,
# conflict hand-off, group acquisition) piped straight into the archived
# allocs-only gate, so an alloc regression on the hot path fails CI even
# between full bench sweeps. Time-based -benchtime so warm-up allocations
# (pools, freelists, first map growth) amortize out of allocs/op.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkManagerUncontended|BenchmarkManagerConflict$$|BenchmarkManagerLockAll|BenchmarkMetricsSnapshot' -benchtime 50ms -benchmem . | $(GO) run ./cmd/benchjson compare -allocs-only $(BENCH_OUT).json -

# The gate CI runs: everything must pass, including the race detector
# over the cross-shard stress tests, the static analyzers, and the
# invariants-tagged audit suite.
ci: build lint test race audit
