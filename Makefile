GO ?= go

# Bench runs are archived as BENCH_<tag>.{txt,json}; bump BENCH_OUT each
# PR and compare against the predecessor with bench-compare.
BENCH_OUT  ?= BENCH_PR5
BENCH_PREV ?= BENCH_PR3

.PHONY: all build vet test race lint audit bench bench-compare benchsmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet plus the project's own analyzers (cmd/hwlint:
# shard lock ordering, callbacks under shard mutexes, nondeterministic
# map-iteration output, direct metric-field access). Zero findings
# required; deliberate exceptions carry //hwlint:allow annotations.
lint: vet
	$(GO) run ./cmd/hwlint ./...

# Runtime invariant audit: the whole test suite with the invariants
# build tag, which arms the paper-property auditor (internal/audit) on
# every Audit-enabled manager — each detector activation is re-verified
# against Theorem 1/3.1/4.1 and Lemma 4.1 from scratch.
audit:
	$(GO) test -tags=invariants ./...

# Full bench sweep with allocation stats; the text output is archived
# alongside a JSON rendering (cmd/benchjson) for diffing across PRs.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms -benchmem ./... | tee $(BENCH_OUT).txt | $(GO) run ./cmd/benchjson > $(BENCH_OUT).json

# Diff this PR's bench run against the previous one; fails when any
# benchmark's ns/op regressed by more than the threshold.
bench-compare:
	$(GO) run ./cmd/benchjson compare -threshold 30 $(BENCH_PREV).json $(BENCH_OUT).json

# Quick harness check used by CI: a couple of iterations of the public
# API benchmarks, piped through benchjson to keep the converter honest.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkManagerUncontended|BenchmarkMetricsSnapshot' -benchtime 10x -benchmem . | $(GO) run ./cmd/benchjson

# The gate CI runs: everything must pass, including the race detector
# over the cross-shard stress tests, the static analyzers, and the
# invariants-tagged audit suite.
ci: build lint test race audit
