GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 200ms ./...

# The gate CI runs: everything must pass, including the race detector
# over the cross-shard stress tests.
ci: build vet test race
